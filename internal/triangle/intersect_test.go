package triangle

import (
	"slices"
	"testing"

	"dexpander/internal/rng"
)

// refIntersect is the map-based oracle: a ∩ b ascending.
func refIntersect(a, b []int32) []int32 {
	in := make(map[int32]bool, len(a))
	for _, x := range a {
		in[x] = true
	}
	var out []int32
	for _, x := range b {
		if in[x] {
			out = append(out, x)
		}
	}
	slices.Sort(out)
	return out
}

// intersectPairs covers the boundary shapes the chooser must route
// correctly: empty operands, singletons hitting and missing, equal-length
// lists across overlap regimes, and the 1-vs-10^4 extreme where only
// galloping is viable.
func intersectPairs() []struct {
	name string
	a, b []int32
} {
	ramp := func(n, start, stride int32) []int32 {
		s := make([]int32, n)
		for i := range s {
			s[i] = start + int32(i)*stride
		}
		return s
	}
	cases := []struct {
		name string
		a, b []int32
	}{
		{"both-empty", nil, nil},
		{"a-empty", nil, ramp(5, 0, 1)},
		{"b-empty", ramp(5, 0, 1), nil},
		{"singleton-hit", []int32{7}, ramp(20, 0, 1)},
		{"singleton-miss", []int32{99}, ramp(20, 0, 1)},
		{"singleton-vs-singleton-hit", []int32{3}, []int32{3}},
		{"singleton-vs-singleton-miss", []int32{3}, []int32{4}},
		{"equal-length-disjoint", ramp(64, 0, 2), ramp(64, 1, 2)},
		{"equal-length-identical", ramp(64, 5, 3), ramp(64, 5, 3)},
		{"equal-length-interleaved", ramp(64, 0, 3), ramp(64, 0, 4)},
		{"first-last-only", []int32{0, 9999}, ramp(10000, 0, 1)},
		{"one-vs-1e4", []int32{1234}, ramp(10000, 0, 1)},
		{"three-vs-1e4", []int32{0, 5000, 12345}, ramp(10000, 0, 1)},
		{"stamp-ratio-edge", ramp(16, 0, 7), ramp(16*stampRatio, 0, 1)},
		{"gallop-ratio-edge", ramp(16, 0, 40), ramp(16*gallopRatio, 0, 1)},
	}
	// A couple of random pairs per skew regime, deterministic in rng.
	r := rng.New(42)
	randSet := func(n, span int32) []int32 {
		seen := make(map[int32]bool, n)
		for int32(len(seen)) < n {
			seen[int32(r.Intn(int(span)))] = true
		}
		s := make([]int32, 0, n)
		for x := range seen {
			s = append(s, x)
		}
		slices.Sort(s)
		return s
	}
	for _, sizes := range [][2]int32{{50, 50}, {20, 20 * stampRatio}, {10, 10 * gallopRatio}, {300, 40}} {
		cases = append(cases, struct {
			name string
			a, b []int32
		}{"rand", randSet(sizes[0], 4096), randSet(sizes[1], 4096)})
	}
	return cases
}

// TestIntersectStrategiesAgree runs every concrete strategy AND the
// adaptive chooser (both marked and unmarked paths) over the boundary
// pairs and demands the oracle's result from each — the bit-identity
// contract reduces to exactly this property.
func TestIntersectStrategiesAgree(t *testing.T) {
	for _, c := range intersectPairs() {
		want := refIntersect(c.a, c.b)
		check := func(got []int32, how string) {
			t.Helper()
			if !slices.Equal(got, want) {
				t.Fatalf("%s/%s: got %v, want %v", c.name, how, got, want)
			}
		}
		check(intersectMerge(c.a, c.b, nil), "merge")
		check(intersectGallop(c.a, c.b, nil), "gallop(a,b)")
		check(intersectGallop(c.b, c.a, nil), "gallop(b,a)")

		sc := newIntersectScratch(16384)
		sc.markAll(c.a)
		check(intersectStampProbe(c.b, sc, nil), "stamp-probe")
		check(intersectAdaptive(c.a, c.b, sc, true, nil), "adaptive-marked")
		check(intersectAdaptive(c.a, c.b, sc, false, nil), "adaptive-unmarked")

		if n := intersectCount(c.a, c.b, sc); n != len(want) {
			t.Fatalf("%s/count: got %d, want %d", c.name, n, len(want))
		}
		if n := intersectCount(c.b, c.a, sc); n != len(want) {
			t.Fatalf("%s/count-swapped: got %d, want %d", c.name, n, len(want))
		}
	}
}

// TestIntersectScratchEpochs pins the no-clearing contract: a new markAll
// must invalidate every previous mark without touching the array, and
// repeated re-marking must keep working long past any single epoch.
func TestIntersectScratchEpochs(t *testing.T) {
	sc := newIntersectScratch(100)
	sc.markAll([]int32{1, 2, 3})
	if !sc.marked(2) || sc.marked(4) {
		t.Fatal("initial marks wrong")
	}
	sc.markAll([]int32{4, 5})
	if sc.marked(2) {
		t.Fatal("stale mark survived an epoch bump")
	}
	if !sc.marked(4) {
		t.Fatal("fresh mark missing")
	}
	// An empty markAll unmarks everything.
	sc.markAll(nil)
	for x := int32(0); x < 100; x++ {
		if sc.marked(x) {
			t.Fatalf("element %d marked after empty markAll", x)
		}
	}
	// Interleave probes across many epochs: each round sees exactly its
	// own marks.
	for round := 0; round < 10000; round++ {
		x := int32(round%98 + 1)
		sc.markAll([]int32{x})
		if got := intersectStampProbe([]int32{0, x, 99}, sc, nil); len(got) != 1 || got[0] != x {
			t.Fatalf("round %d: probe returned %v, want [%d]", round, got, x)
		}
	}
}

// TestIntersectAdaptiveSuffixSuperset exercises the exact pattern the
// rank kernel relies on: mark a FULL list once, then intersect suffixes
// of it against other lists — the superset marks must not leak elements
// outside the suffix as long as b stays above the suffix start, and the
// dst buffer must be appendable across calls.
func TestIntersectAdaptiveSuffixSuperset(t *testing.T) {
	full := []int32{2, 5, 8, 11, 14, 17, 20}
	sc := newIntersectScratch(64)
	sc.markAll(full)
	buf := make([]int32, 0, 8)
	for i := 0; i+1 < len(full); i++ {
		suffix := full[i+1:]
		// b simulates fwd(full[i]): strictly above full[i], overlapping the
		// suffix on every other element.
		var b []int32
		for j := i + 1; j < len(full); j += 2 {
			b = append(b, full[j])
		}
		b = append(b, 63) // above everything, never marked
		want := refIntersect(suffix, b)
		buf = intersectAdaptive(suffix, b, sc, true, buf[:0])
		if !slices.Equal(buf, want) {
			t.Fatalf("suffix %d: got %v, want %v", i, buf, want)
		}
	}
}
