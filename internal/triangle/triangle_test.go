package triangle

import (
	"testing"

	"dexpander/internal/gen"
	"dexpander/internal/graph"
)

func TestMakeTriangleSorts(t *testing.T) {
	tr := MakeTriangle(5, 1, 3)
	if tr.A != 1 || tr.B != 3 || tr.C != 5 {
		t.Fatalf("MakeTriangle = %+v", tr)
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet()
	s.Add(MakeTriangle(1, 2, 3))
	s.Add(MakeTriangle(3, 2, 1)) // duplicate
	s.Add(MakeTriangle(2, 3, 4))
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Has(Triangle{1, 2, 3}) {
		t.Fatal("missing member")
	}
	sorted := s.Sorted()
	if sorted[0] != (Triangle{1, 2, 3}) || sorted[1] != (Triangle{2, 3, 4}) {
		t.Fatalf("Sorted = %v", sorted)
	}
	o := NewSet()
	o.Add(Triangle{1, 2, 3})
	if s.Equal(o) {
		t.Fatal("unequal sets compare equal")
	}
	o.Add(Triangle{2, 3, 4})
	if !s.Equal(o) {
		t.Fatal("equal sets compare unequal")
	}
}

func TestBruteForceKnownCounts(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"K4", gen.Complete(4), 4},
		{"K5", gen.Complete(5), 10},
		{"C5", gen.Cycle(5), 0},
		{"path", gen.Path(6), 0},
		{"K3", gen.Complete(3), 1},
	}
	for _, tc := range cases {
		if got := Count(graph.WholeGraph(tc.g)); got != tc.want {
			t.Errorf("%s: count = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestBruteForceRespectsMask(t *testing.T) {
	g := gen.Complete(4) // edges: 01,02,03,12,13,23
	mask := make([]bool, g.M())
	for e := range mask {
		mask[e] = true
	}
	mask[0] = false // kill 0-1
	got := BruteForce(graph.NewSub(g, nil, mask))
	// Triangles not using edge 0-1: {0,2,3} and {1,2,3}.
	if got.Len() != 2 {
		t.Fatalf("masked count = %d, want 2", got.Len())
	}
}

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"K8":       gen.Complete(8),
		"gnp30":    gen.GNP(30, 0.4, 5),
		"gnp24d":   gen.GNP(24, 0.7, 6),
		"ring":     gen.RingOfCliques(3, 5, 7),
		"dumbbell": gen.Dumbbell(8, 2, 8),
		"sparse":   gen.GNPConnected(40, 0.08, 9),
		"bipartiteish": gen.PlantedPartition(2, 12, 0.15, 0.5,
			10),
	}
}

func TestNaiveMatchesBruteForce(t *testing.T) {
	for name, g := range testGraphs() {
		view := graph.WholeGraph(g)
		want := BruteForce(view)
		got, stats, err := Naive(view, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !got.Equal(want) {
			t.Errorf("%s: naive found %d, want %d", name, got.Len(), want.Len())
		}
		if maxd := g.MaxDeg(); stats.Rounds != maxd {
			t.Errorf("%s: naive rounds = %d, want maxdeg %d", name, stats.Rounds, maxd)
		}
	}
}

func TestCliqueDLPMatchesBruteForce(t *testing.T) {
	for name, g := range testGraphs() {
		view := graph.WholeGraph(g)
		want := BruteForce(view)
		got, stats, err := CliqueDLP(view, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !got.Equal(want) {
			t.Errorf("%s: DLP found %d, want %d", name, got.Len(), want.Len())
		}
		if want.Len() > 0 && stats.Rounds == 0 {
			t.Errorf("%s: no rounds recorded", name)
		}
	}
}

func TestCliqueDLPTinyGraphs(t *testing.T) {
	// n = 9 puts C(g+2,3) = 10 > n, exercising the round-robin handler
	// wrap.
	g := gen.Complete(9)
	got, _, err := CliqueDLP(graph.WholeGraph(g), 3)
	if err != nil {
		t.Fatal(err)
	}
	want := BruteForce(graph.WholeGraph(g))
	if !got.Equal(want) {
		t.Fatalf("K9: DLP found %d, want %d", got.Len(), want.Len())
	}
	// Degenerate sizes.
	for _, n := range []int{1, 2} {
		s, _, err := CliqueDLP(graph.WholeGraph(gen.Complete(n)), 1)
		if err != nil || s.Len() != 0 {
			t.Fatalf("K%d: %v, len %d", n, err, s.Len())
		}
	}
}

func TestCliqueWithGroupsAnyG(t *testing.T) {
	// Correctness is group-count independent.
	g := gen.GNP(20, 0.4, 3)
	view := graph.WholeGraph(g)
	want := BruteForce(view)
	for _, groups := range []int{1, 2, 3, 5, 20, 100} {
		got, _, err := CliqueWithGroups(view, groups, 5)
		if err != nil {
			t.Fatalf("g=%d: %v", groups, err)
		}
		if !got.Equal(want) {
			t.Fatalf("g=%d: found %d, want %d", groups, got.Len(), want.Len())
		}
	}
}

func TestCliqueDLPSparseRegimeFast(t *testing.T) {
	// Section 4's sparse regime: with m = O(n^{5/3}) the all-to-all
	// bandwidth dwarfs the m*g/n per-vertex traffic and DLP runs in a
	// handful of rounds.
	g := gen.GNPConnected(96, 0.03, 7)
	view := graph.WholeGraph(g)
	want := BruteForce(view)
	got, stats, err := CliqueDLP(view, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("found %d, want %d", got.Len(), want.Len())
	}
	if stats.Rounds > 10 {
		t.Fatalf("sparse clique took %d rounds, want O(1)", stats.Rounds)
	}
}

func TestEnumerateMatchesBruteForce(t *testing.T) {
	for name, g := range testGraphs() {
		view := graph.WholeGraph(g)
		want := BruteForce(view)
		got, stats, err := Enumerate(view, Options{Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !got.Equal(want) {
			t.Errorf("%s: enumerate found %d, want %d", name, got.Len(), want.Len())
		}
		if stats.Recursions < 1 {
			t.Errorf("%s: no recursion recorded", name)
		}
	}
}

func TestEnumerateOnDecomposableGraph(t *testing.T) {
	// A graph the decomposition actually splits: triangles crossing the
	// bridge exercise the E* recursion.
	b := graph.NewBuilder(48)
	// Two K24s.
	for i := 0; i < 24; i++ {
		for j := i + 1; j < 24; j++ {
			b.AddEdge(i, j)
			b.AddEdge(24+i, 24+j)
		}
	}
	// A bridge triangle spanning both sides: (0, 24) plus shared apex 1.
	b.AddEdge(0, 24)
	b.AddEdge(1, 24)
	g := b.Graph()
	view := graph.WholeGraph(g)
	want := BruteForce(view)
	got, stats, err := Enumerate(view, Options{Seed: 5, Eps: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("found %d, want %d", got.Len(), want.Len())
	}
	// The cross triangle {0,1,24} must be present.
	if !got.Has(Triangle{0, 1, 24}) {
		t.Fatal("missed the bridge triangle")
	}
	if stats.Components < 1 || stats.Rounds == 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestEnumerateEmptyAndTiny(t *testing.T) {
	empty := graph.NewBuilder(5).Graph()
	got, _, err := Enumerate(graph.WholeGraph(empty), Options{Seed: 1})
	if err != nil || got.Len() != 0 {
		t.Fatalf("empty graph: %v, %d triangles", err, got.Len())
	}
	tri := gen.Complete(3)
	got, _, err = Enumerate(graph.WholeGraph(tri), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("K3: found %d", got.Len())
	}
}

func TestEnumerateDeterministic(t *testing.T) {
	g := gen.GNP(26, 0.5, 11)
	view := graph.WholeGraph(g)
	a, sa, err := Enumerate(view, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := Enumerate(view, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) || sa.Rounds != sb.Rounds {
		t.Fatal("enumeration not deterministic in seed")
	}
}

func TestDetect(t *testing.T) {
	free := gen.Cycle(12) // triangle-free
	got, _, err := Detect(graph.WholeGraph(free), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("detected a triangle in a cycle")
	}
	has := gen.Complete(5)
	got, _, err = Detect(graph.WholeGraph(has), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("missed triangles in K5")
	}
}

func TestCountDistributedAndLocalCounts(t *testing.T) {
	g := gen.Complete(5)
	view := graph.WholeGraph(g)
	cnt, _, err := CountDistributed(view, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cnt != 10 {
		t.Fatalf("count = %d, want 10", cnt)
	}
	// In K5 every vertex lies in C(4,2) = 6 triangles.
	set := BruteForce(view)
	for v, c := range LocalCounts(5, set) {
		if c != 6 {
			t.Fatalf("local count of %d = %d, want 6", v, c)
		}
	}
}

func TestVerifyAgainstBrute(t *testing.T) {
	g := gen.Complete(4)
	view := graph.WholeGraph(g)
	got := BruteForce(view)
	if m, e := VerifyAgainstBrute(view, got); m != 0 || e != 0 {
		t.Fatalf("self-comparison: missing=%d extra=%d", m, e)
	}
	// Remove one and add a bogus one.
	partial := NewSet()
	for i, tr := range got.Sorted() {
		if i > 0 {
			partial.Add(tr)
		}
	}
	partial.Add(Triangle{A: 90, B: 91, C: 92})
	if m, e := VerifyAgainstBrute(view, partial); m != 1 || e != 1 {
		t.Fatalf("missing=%d extra=%d, want 1,1", m, e)
	}
}

func TestNaiveDetect(t *testing.T) {
	got, _, err := NaiveDetect(graph.WholeGraph(gen.Cycle(8)), 1)
	if err != nil || got {
		t.Fatalf("NaiveDetect on cycle: %v %v", got, err)
	}
	got, _, err = NaiveDetect(graph.WholeGraph(gen.Complete(4)), 1)
	if err != nil || !got {
		t.Fatalf("NaiveDetect on K4: %v %v", got, err)
	}
}

func TestEnumerateGnpHalf(t *testing.T) {
	// The lower-bound family: G(n, 1/2).
	g := gen.GNP(36, 0.5, 13)
	view := graph.WholeGraph(g)
	want := BruteForce(view)
	got, _, err := Enumerate(view, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("G(36,1/2): found %d, want %d", got.Len(), want.Len())
	}
}
