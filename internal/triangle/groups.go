package triangle

import "math"

// GroupCount returns the paper's group parameter g = ceil(n^{1/3}) as an
// exact integer: the smallest g >= 1 with g^3 >= n. Both the
// CONGESTED-CLIQUE baseline (CliqueDLP) and the CONGEST enumeration's
// per-component scheme size their group-triple partition with it, and the
// harness normalizes round counts by it, so it lives in one place.
//
// A naive ceil(math.Cbrt(n)) is wrong at perfect cubes whenever the
// floating-point cube root lands epsilon above the true value (e.g.
// Cbrt(x^3) = x + ulp turns into x+1), which silently inflates the group
// count — and with it the number of triples and handler traffic — on
// exactly the sizes benchmarks like to use (8, 64, 512, 1000, ...). The
// float result is therefore only a starting guess, corrected by exact
// integer comparison.
func GroupCount(n int) int {
	if n <= 1 {
		return 1
	}
	g := int(math.Round(math.Cbrt(float64(n))))
	if g < 1 {
		g = 1
	}
	for g > 1 && (g-1)*(g-1)*(g-1) >= n {
		g--
	}
	for g*g*g < n {
		g++
	}
	return g
}
