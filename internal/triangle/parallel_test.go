package triangle

import (
	"runtime"
	"testing"
	"time"

	"dexpander/internal/gen"
	"dexpander/internal/graph"
)

// TestParallelMatchesBruteForce50Seeds is the kernel's ground-truth
// contract: on 50 random instances spanning several families, the
// parallel counter returns exactly BruteForce's set for several worker
// counts, and the count/slice variants agree.
func TestParallelMatchesBruteForce50Seeds(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		var g *graph.Graph
		switch seed % 4 {
		case 0:
			g = gen.GNP(60, 0.25, seed)
		case 1:
			g = gen.ChungLu(80, 2.5, 8, seed)
		case 2:
			g = gen.RingOfCliques(4, 7, seed)
		default:
			g = gen.PlantedPartition(3, 20, 0.4, 0.05, seed)
		}
		view := graph.WholeGraph(g)
		want := BruteForce(view)
		for _, workers := range []int{1, 3, runtime.GOMAXPROCS(0)} {
			got := BruteForceParallel(view, workers)
			if !got.Equal(want) {
				t.Fatalf("seed %d workers %d: parallel set differs (got %d, want %d)",
					seed, workers, got.Len(), want.Len())
			}
			if got.Checksum() != want.Checksum() {
				t.Fatalf("seed %d workers %d: checksum mismatch on equal sets", seed, workers)
			}
			if c := CountParallel(view, workers); c != want.Len() {
				t.Fatalf("seed %d workers %d: CountParallel = %d, want %d",
					seed, workers, c, want.Len())
			}
		}
	}
}

// TestParallelRespectsView exercises member restriction and edge masks:
// the kernel must see exactly the usable edges, like BruteForce.
func TestParallelRespectsView(t *testing.T) {
	g := gen.GNP(50, 0.3, 9)
	members := graph.NewVSet(g.N())
	for v := 0; v < g.N(); v += 2 {
		members.Add(v)
	}
	mask := make([]bool, g.M())
	for e := 0; e < g.M(); e++ {
		mask[e] = e%5 != 0 // drop every fifth edge
	}
	view := graph.NewSub(g, members, mask)
	want := BruteForce(view)
	got := BruteForceParallel(view, 4)
	if !got.Equal(want) {
		t.Fatalf("masked view: parallel %d triangles, brute %d", got.Len(), want.Len())
	}
}

// TestParallelHandlesMultigraph checks parallel edges and self-loops are
// collapsed/skipped exactly as the map-based oracle does.
func TestParallelHandlesMultigraph(t *testing.T) {
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1) // parallel
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 2) // loop
	b.AddEdge(3, 4)
	view := graph.WholeGraph(b.Graph())
	want := BruteForce(view)
	got := BruteForceParallel(view, 2)
	if !got.Equal(want) || got.Len() != 1 {
		t.Fatalf("multigraph: got %d triangles, want %d (=1)", got.Len(), want.Len())
	}
}

// TestParallelDeterministicOrder pins the merge contract: the triangle
// slice is lexicographically sorted and bit-identical for every worker
// count.
func TestParallelDeterministicOrder(t *testing.T) {
	g := gen.GNP(120, 0.15, 42)
	view := graph.WholeGraph(g)
	ref := TrianglesParallel(view, 1)
	for i := 1; i < len(ref); i++ {
		a, b := ref[i-1], ref[i]
		if a.A > b.A || (a.A == b.A && (a.B > b.B || (a.B == b.B && a.C >= b.C))) {
			t.Fatalf("output not strictly sorted at %d: %v then %v", i, a, b)
		}
	}
	for _, workers := range []int{2, 5, 8, 64} {
		got := TrianglesParallel(view, workers)
		if len(got) != len(ref) {
			t.Fatalf("workers %d: %d triangles, want %d", workers, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers %d: triangle %d is %v, want %v", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestParallelEmptyAndTiny(t *testing.T) {
	if n := CountParallel(graph.WholeGraph(gen.Path(1)), 4); n != 0 {
		t.Fatalf("single vertex: %d triangles", n)
	}
	if n := CountParallel(graph.WholeGraph(gen.Path(2)), 4); n != 0 {
		t.Fatalf("single edge: %d triangles", n)
	}
	if n := CountParallel(graph.WholeGraph(gen.Complete(3)), 4); n != 1 {
		t.Fatalf("K3: %d triangles, want 1", n)
	}
	empty := graph.NewSub(gen.Complete(4), graph.NewVSet(4), nil)
	if n := CountParallel(empty, 4); n != 0 {
		t.Fatalf("empty member set: %d triangles", n)
	}
}

// TestParallelSpeedup2048 verifies the acceptance bar: on a 2048-node GNP
// graph with GOMAXPROCS >= 4, the parallel counter is at least 3x faster
// than the sequential map-based kernel while returning the identical set.
// Timing assertions are inherently environment-sensitive, so the check is
// skipped in -short runs and under the race detector.
func TestParallelSpeedup2048(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing comparison skipped under the race detector")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skip("needs GOMAXPROCS >= 4")
	}
	g := gen.GNP(2048, 0.05, 7)
	view := graph.WholeGraph(g)

	start := time.Now()
	want := BruteForce(view)
	seq := time.Since(start)

	start = time.Now()
	got := BruteForceParallel(view, 0)
	par := time.Since(start)

	if !got.Equal(want) {
		t.Fatalf("parallel set differs: %d vs %d triangles", got.Len(), want.Len())
	}
	speedup := float64(seq) / float64(par)
	t.Logf("n=2048 m=%d triangles=%d seq=%v par=%v speedup=%.1fx",
		g.M(), want.Len(), seq, par, speedup)
	if speedup < 3 {
		t.Errorf("speedup %.2fx below the 3x acceptance bar (seq=%v par=%v)", speedup, seq, par)
	}
}
