package triangle

import (
	"testing"

	"dexpander/internal/gen"
	"dexpander/internal/graph"
)

// TestTilingTriplesCoverGrid sweeps grid dimensions and checks the
// block-triple schedule covers every ordered (i <= j <= k) exactly once
// — the property that makes the per-triple counts sum to the total
// without double counting.
func TestTilingTriplesCoverGrid(t *testing.T) {
	g := gen.GNP(96, 0.2, 5)
	view := graph.WholeGraph(g)
	for p := 1; p <= 9; p++ {
		pl := NewDistPlan(view, p)
		tl := pl.Tiling
		if err := tl.Validate(); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		seen := make(map[BlockTriple]int)
		for _, tr := range tl.Triples() {
			seen[tr]++
		}
		want := tl.P * (tl.P + 1) * (tl.P + 2) / 6
		if len(seen) != want {
			t.Fatalf("p=%d: %d distinct triples, want %d", p, len(seen), want)
		}
		for i := 0; i < tl.P; i++ {
			for j := i; j < tl.P; j++ {
				for k := j; k < tl.P; k++ {
					if seen[BlockTriple{i, j, k}] != 1 {
						t.Fatalf("p=%d: triple (%d,%d,%d) appears %d times",
							p, i, j, k, seen[BlockTriple{i, j, k}])
					}
				}
			}
		}
	}
}

// TestFragmentRoundTrip pins the wire format: encode/decode is lossless,
// the declared size is exact, and corruption anywhere in the stream is
// detected.
func TestFragmentRoundTrip(t *testing.T) {
	g := gen.BarabasiAlbert(256, 4, 11)
	view := graph.WholeGraph(g)
	pl := NewDistPlan(view, 4)
	for b := 0; b < pl.Tiling.P; b++ {
		f := pl.Fragment(b)
		data := f.Encode()
		if len(data) != f.EncodedSize() {
			t.Fatalf("block %d: encoded %d bytes, EncodedSize says %d", b, len(data), f.EncodedSize())
		}
		back, err := DecodeFragment(data)
		if err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
		if back.Ranks != f.Ranks || back.Lo != f.Lo || back.Hi != f.Hi ||
			back.Checksum() != f.Checksum() {
			t.Fatalf("block %d: round trip changed the fragment", b)
		}
		for r := f.Lo; r < f.Hi; r++ {
			a, bb := f.Fwd(r), back.Fwd(r)
			if len(a) != len(bb) {
				t.Fatalf("block %d rank %d: list length %d vs %d", b, r, len(a), len(bb))
			}
			for i := range a {
				if a[i] != bb[i] {
					t.Fatalf("block %d rank %d: arc %d differs", b, r, i)
				}
			}
		}
	}

	// Corruption at every byte offset must be rejected (flip a bit; the
	// checksum or a structural invariant catches it).
	f := pl.Fragment(1)
	data := f.Encode()
	for off := 0; off < len(data); off += 7 {
		bad := make([]byte, len(data))
		copy(bad, data)
		bad[off] ^= 0x40
		if _, err := DecodeFragment(bad); err == nil {
			// A flip inside a length-prefix region could in principle
			// produce another VALID fragment only if the checksum also
			// matched — astronomically unlikely; treat success as a bug.
			t.Fatalf("corruption at byte %d went undetected", off)
		}
	}
	if _, err := DecodeFragment(data[:len(data)-3]); err == nil {
		t.Fatal("truncated fragment accepted")
	}
	if _, err := DecodeFragment(append(data, 0)); err == nil {
		t.Fatal("oversized fragment accepted")
	}
}

// TestCountFragmentsEqualsLocal is the distribution layer's core
// contract: for every family, seed, and grid dimension, summing
// CountFragments over the tiling's triples (computed purely from encoded
// fragments, as a replica would) equals CountParallel2D — and each
// triple equals the coordinator-side CountTriple fallback.
func TestCountFragmentsEqualsLocal(t *testing.T) {
	cases := []struct {
		name  string
		build func(seed uint64) *graph.Graph
	}{
		{"gnp", func(seed uint64) *graph.Graph { return gen.GNP(64, 0.25, seed) }},
		{"ba", func(seed uint64) *graph.Graph { return gen.BarabasiAlbert(128, 5, seed) }},
		{"chung-lu", func(seed uint64) *graph.Graph { return gen.ChungLu(96, 2.2, 8, seed) }},
		{"ring", func(seed uint64) *graph.Graph { return gen.RingOfCliques(4, 6, seed) }},
	}
	for _, tc := range cases {
		for seed := uint64(1); seed <= 3; seed++ {
			view := graph.WholeGraph(tc.build(seed))
			want := CountParallel2D(view, 0)
			for _, p := range []int{1, 2, 3, 5} {
				pl := NewDistPlan(view, p)
				// Decode through the wire format so the test exercises the
				// exact bytes a replica would count from.
				frags := make([]*Fragment, pl.Tiling.P)
				for b := range frags {
					f, err := DecodeFragment(pl.Fragment(b).Encode())
					if err != nil {
						t.Fatalf("%s seed %d p=%d block %d: %v", tc.name, seed, p, b, err)
					}
					frags[b] = f
				}
				total := 0
				for _, tr := range pl.Tiling.Triples() {
					n, err := CountFragments(pl.Tiling, tr, frags[tr.I], frags[tr.J])
					if err != nil {
						t.Fatalf("%s seed %d p=%d triple %+v: %v", tc.name, seed, p, tr, err)
					}
					if local := pl.CountTriple(tr); local != n {
						t.Fatalf("%s seed %d p=%d triple %+v: fragments counted %d, local task %d",
							tc.name, seed, p, tr, n, local)
					}
					total += n
				}
				if total != want {
					t.Fatalf("%s seed %d p=%d: distributed total %d, CountParallel2D %d",
						tc.name, seed, p, total, want)
				}
			}
		}
	}
}

// TestCountFragmentsRejectsMismatch checks the replica-side validation:
// a fragment for the wrong block, or a triple outside the grid, errors
// instead of silently miscounting.
func TestCountFragmentsRejectsMismatch(t *testing.T) {
	view := graph.WholeGraph(gen.GNP(48, 0.3, 2))
	pl := NewDistPlan(view, 3)
	f0, f1 := pl.Fragment(0), pl.Fragment(1)
	if _, err := CountFragments(pl.Tiling, BlockTriple{0, 1, 2}, f1, f1); err == nil {
		t.Fatal("fragment covering the wrong block accepted")
	}
	if _, err := CountFragments(pl.Tiling, BlockTriple{1, 0, 2}, f1, f0); err == nil {
		t.Fatal("unordered triple accepted")
	}
	if _, err := CountFragments(pl.Tiling, BlockTriple{0, 1, 3}, f0, f1); err == nil {
		t.Fatal("triple outside the grid accepted")
	}
}
