package triangle

import (
	"runtime"
	"slices"
	"sync"

	"dexpander/internal/graph"
	"dexpander/internal/par"
)

// This file implements the original shared-memory merge kernel — the
// same ground truth as BruteForce over a sorted compressed adjacency
// with two-pointer merge intersections, sharded by vertex range across
// workers — plus the public entry points, which now dispatch through the
// kernel selector (KernelAuto resolves to the rank kernel in rank.go;
// the merge kernel stays as the cross-check oracle and the
// KernelMerge-selected path). Outputs are bit-identical across kernels
// and worker counts: contiguous shards, each worker writing only its own
// output slice, results concatenated (and, for the rank kernel,
// canonically re-sorted) so the slice the caller sees never depends on
// the kernel or the parallelism.
//
// In the merge kernel every triangle {a < b < c} is discovered exactly
// once, at its smallest vertex a, by intersecting the above-b suffixes
// of adj(a) and adj(b).

// resolveWorkers maps the public workers convention (<= 0 means
// GOMAXPROCS) onto a concrete count.
func resolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// csrAdj is a read-only sorted adjacency over the base-graph vertex ids,
// restricted to the view's usable non-loop edges, with parallel edges
// collapsed. nbr[off[v]:end[v]] is v's strictly sorted neighbor list.
type csrAdj struct {
	off []int32
	end []int32
	nbr []int32
}

// buildCSR materializes the view's usable simple adjacency in O(n + m log
// deg). Only one pass over the edge list plus per-vertex sorts; the three
// slices are the only allocations (counts is zeroed after the prefix sum
// and reused as the fill cursor — the serve-cold path builds a CSR per
// request, so the fourth array was measurable).
func buildCSR(view *graph.Sub) csrAdj {
	g := view.Base()
	n := g.N()
	counts := make([]int32, n)
	for e := 0; e < g.M(); e++ {
		if !view.Usable(e) || g.IsLoop(e) {
			continue
		}
		u, v := g.EdgeEndpoints(e)
		counts[u]++
		counts[v]++
	}
	off := make([]int32, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + counts[v]
	}
	nbr := make([]int32, off[n])
	fill := counts
	for v := range fill {
		fill[v] = 0
	}
	for e := 0; e < g.M(); e++ {
		if !view.Usable(e) || g.IsLoop(e) {
			continue
		}
		u, v := g.EdgeEndpoints(e)
		nbr[off[u]+fill[u]] = int32(v)
		fill[u]++
		nbr[off[v]+fill[v]] = int32(u)
		fill[v]++
	}
	end := make([]int32, n)
	for v := 0; v < n; v++ {
		seg := nbr[off[v] : off[v]+fill[v]]
		slices.Sort(seg)
		// Collapse parallel edges in place; end[v] marks the deduped
		// segment's limit (gaps between end[v] and off[v+1] are unused).
		w := int32(0)
		for i := range seg {
			if i > 0 && seg[i] == seg[i-1] {
				continue
			}
			seg[w] = seg[i]
			w++
		}
		end[v] = off[v] + w
	}
	return csrAdj{off: off, end: end, nbr: nbr}
}

// neighbors returns v's deduped sorted neighbor list.
func (a csrAdj) neighbors(v int) []int32 { return a.nbr[a.off[v]:a.end[v]] }

// searchAbove returns the index of the first element of s greater than x.
func searchAbove(s []int32, x int32) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// shardVertices splits the member vertices into at most `workers`
// contiguous shards balanced by the intersection work estimate
// deg(v) * log-free upper bound deg(v) (the same quantity that bounds
// BruteForce's per-vertex cost), so heavy-tailed degree sequences do not
// serialize on one worker.
func shardVertices(members []int, adj csrAdj, workers int) [][]int {
	if len(members) == 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(members) {
		workers = len(members)
	}
	var total int64
	cost := make([]int64, len(members))
	for i, v := range members {
		d := int64(len(adj.neighbors(v)))
		cost[i] = d*d + 1
		total += cost[i]
	}
	shards := make([][]int, 0, workers)
	per := total/int64(workers) + 1
	var acc int64
	start := 0
	for i := range members {
		acc += cost[i]
		if acc >= per && len(shards) < workers-1 {
			shards = append(shards, members[start:i+1])
			start = i + 1
			acc = 0
		}
	}
	if start < len(members) {
		shards = append(shards, members[start:])
	}
	return shards
}

// forEachTriangleParallel enumerates every triangle of the view once,
// sharded across `workers` goroutines (<= 0 means GOMAXPROCS). Each
// shard's triangles arrive in lexicographic order and shards cover
// ascending vertex ranges, so the concatenation is globally sorted and
// independent of the worker count. cp (nil = never canceled) is probed
// once per shard vertex; on cancellation every shard stops within one
// vertex's intersections and the first probe error is returned.
func forEachTriangleParallel(view *graph.Sub, workers int, cp par.Checkpoint) ([][]Triangle, error) {
	workers = resolveWorkers(workers)
	adj := buildCSR(view)
	shards := shardVertices(view.Members().Members(), adj, workers)
	out := make([][]Triangle, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for si, shard := range shards {
		wg.Add(1)
		go func(si int, shard []int) {
			defer wg.Done()
			var local []Triangle
			for _, a := range shard {
				if cp != nil {
					if err := cp(); err != nil {
						errs[si] = err
						return
					}
				}
				na := adj.neighbors(a)
				// Only neighbors above a can be the middle vertex; na is
				// strictly sorted, so everything past b's own position is
				// already above b.
				for bi := searchAbove(na, int32(a)); bi < len(na); bi++ {
					b32 := na[bi]
					b := int(b32)
					nb := adj.neighbors(b)
					// Intersect the above-b suffixes of both lists.
					i := bi + 1
					j := searchAbove(nb, b32)
					for i < len(na) && j < len(nb) {
						switch {
						case na[i] < nb[j]:
							i++
						case na[i] > nb[j]:
							j++
						default:
							local = append(local, Triangle{A: a, B: b, C: int(na[i])})
							i++
							j++
						}
					}
				}
			}
			out[si] = local
		}(si, shard)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// TrianglesParallel returns every triangle of the view in lexicographic
// order, computed by the auto-selected kernel (currently rank). The
// result is identical (element for element) for every worker count and
// to the merge kernel's output.
func TrianglesParallel(view *graph.Sub, workers int) []Triangle {
	return TrianglesKernel(view, workers, KernelAuto)
}

// BruteForceParallel is the parallel drop-in for BruteForce: the same
// triangle set, computed by the auto-selected kernel.
func BruteForceParallel(view *graph.Sub, workers int) *Set {
	return SetKernel(view, workers, KernelAuto)
}

// SetKernel collects the selected kernel's triangles into a Set.
func SetKernel(view *graph.Sub, workers int, k Kernel) *Set {
	set, _ := SetKernelCheck(view, workers, k, nil)
	return set
}

// SetKernelCheck is SetKernel with a cooperative-cancellation probe
// consulted once per shard vertex: a canceled run stops within one
// vertex's intersections and returns cp's error; an uncanceled run
// returns exactly SetKernel's set.
func SetKernelCheck(view *graph.Sub, workers int, k Kernel, cp par.Checkpoint) (*Set, error) {
	var shards [][]Triangle
	var err error
	if k == KernelMerge {
		shards, err = forEachTriangleParallel(view, workers, cp)
	} else {
		shards, err = forEachTriangleRank(view, workers, cp)
	}
	if err != nil {
		return nil, err
	}
	out := newSetSized(countShards(shards))
	for _, shard := range shards {
		for _, t := range shard {
			out.Add(t)
		}
	}
	return out, nil
}

// CountParallel counts the view's triangles with the auto-selected
// kernel.
func CountParallel(view *graph.Sub, workers int) int {
	return CountKernel(view, workers, KernelAuto)
}
