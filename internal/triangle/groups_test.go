package triangle

import (
	"math"
	"testing"
)

func TestGroupCountBoundaries(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {2, 2},
		{7, 2}, {8, 2}, {9, 3},
		{26, 3}, {27, 3}, {28, 4},
		{63, 4}, {64, 4}, {65, 5},
		{124, 5}, {125, 5}, {126, 6},
		{511, 8}, {512, 8}, {513, 9},
		{728, 9}, {729, 9}, {730, 10},
		{999, 10}, {1000, 10}, {1001, 11},
		{4095, 16}, {4096, 16}, {4097, 17},
	}
	for _, c := range cases {
		if got := GroupCount(c.n); got != c.want {
			t.Errorf("GroupCount(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// TestGroupCountIsCeilCbrt checks the defining property on every size up
// to 20k: g is the least integer whose cube reaches n.
func TestGroupCountIsCeilCbrt(t *testing.T) {
	for n := 1; n <= 20000; n++ {
		g := GroupCount(n)
		if g*g*g < n {
			t.Fatalf("GroupCount(%d) = %d: cube %d below n", n, g, g*g*g)
		}
		if g > 1 && (g-1)*(g-1)*(g-1) >= n {
			t.Fatalf("GroupCount(%d) = %d: g-1 already suffices", n, g)
		}
	}
}

// TestGroupCountPerfectCubes pins the failure mode the helper exists for:
// at perfect cubes the answer is the exact root even when the
// floating-point cube root rounds above it.
func TestGroupCountPerfectCubes(t *testing.T) {
	for x := 1; x <= 128; x++ {
		n := x * x * x
		if got := GroupCount(n); got != x {
			t.Errorf("GroupCount(%d) = %d, want %d (cbrt=%v)",
				n, got, x, math.Cbrt(float64(n)))
		}
	}
}
