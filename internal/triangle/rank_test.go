package triangle

import (
	"runtime"
	"testing"
	"time"

	"dexpander/internal/gen"
	"dexpander/internal/graph"
)

// kernelFamilies spans the degree-distribution regimes the kernels must
// agree on: uniform random, heavy-tail Chung-Lu, preferential
// attachment, clustered, triangle-free bipartite, star (one hub, zero
// triangles), complete (every wedge closes), and flat grid.
func kernelFamilies() map[string]func(seed uint64) *graph.Graph {
	return map[string]func(seed uint64) *graph.Graph{
		"gnp":             func(s uint64) *graph.Graph { return gen.GNP(70, 0.2, s) },
		"chung-lu-heavy":  func(s uint64) *graph.Graph { return gen.ChungLu(90, 2.1, 8, s) },
		"barabasi-albert": func(s uint64) *graph.Graph { return gen.BarabasiAlbert(90, 4, s) },
		"ring":            func(s uint64) *graph.Graph { return gen.RingOfCliques(4, 8, s) },
		"bipartite":       func(s uint64) *graph.Graph { return gen.BipartiteGNP(30, 30, 0.2, s) },
		"star":            func(s uint64) *graph.Graph { return gen.Star(40) },
		"complete":        func(s uint64) *graph.Graph { return gen.Complete(18) },
		"grid":            func(s uint64) *graph.Graph { return gen.Grid(7, 9) },
	}
}

// TestRankKernelBitIdenticalAllFamilies pins the tentpole contract: for
// every family, seed, and worker count, the rank kernel's triangle slice
// is element-for-element identical to the merge kernel's (which the
// existing tests pin against BruteForce), and the 2D counting path
// returns the same count.
func TestRankKernelBitIdenticalAllFamilies(t *testing.T) {
	workerCounts := []int{1, 2, 3, 13, runtime.GOMAXPROCS(0)}
	for name, build := range kernelFamilies() {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 6; seed++ {
				view := graph.WholeGraph(build(seed))
				want := BruteForce(view)
				ref := TrianglesKernel(view, 1, KernelMerge)
				if len(ref) != want.Len() {
					t.Fatalf("seed %d: merge %d triangles, brute %d", seed, len(ref), want.Len())
				}
				for _, workers := range workerCounts {
					got := TrianglesKernel(view, workers, KernelRank)
					if len(got) != len(ref) {
						t.Fatalf("seed %d workers %d: rank %d triangles, merge %d",
							seed, workers, len(got), len(ref))
					}
					for i := range got {
						if got[i] != ref[i] {
							t.Fatalf("seed %d workers %d: triangle %d is %v, want %v",
								seed, workers, i, got[i], ref[i])
						}
					}
					if c := CountKernel(view, workers, Kernel2D); c != len(ref) {
						t.Fatalf("seed %d workers %d: 2D count %d, want %d", seed, workers, c, len(ref))
					}
					if set := SetKernel(view, workers, KernelRank); !set.Equal(want) {
						t.Fatalf("seed %d workers %d: rank set differs from brute", seed, workers)
					}
				}
			}
		})
	}
}

// TestRankKernelRestrictedViews pins the kernels on graph.Sub views with
// member restrictions and edge masks — the shape the decomposition
// pipeline feeds them.
func TestRankKernelRestrictedViews(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		g := gen.BarabasiAlbert(60, 5, seed)
		members := graph.NewVSet(g.N())
		for v := 0; v < g.N(); v++ {
			if v%3 != 0 {
				members.Add(v)
			}
		}
		mask := make([]bool, g.M())
		for e := 0; e < g.M(); e++ {
			mask[e] = e%7 != 0
		}
		view := graph.NewSub(g, members, mask)
		want := BruteForce(view)
		ref := TrianglesKernel(view, 3, KernelMerge)
		got := TrianglesKernel(view, 3, KernelRank)
		if len(got) != len(ref) || len(got) != want.Len() {
			t.Fatalf("seed %d: rank %d, merge %d, brute %d", seed, len(got), len(ref), want.Len())
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("seed %d: triangle %d is %v, want %v", seed, i, got[i], ref[i])
			}
		}
		if c := CountParallel2D(view, 0); c != want.Len() {
			t.Fatalf("seed %d: 2D count %d, want %d", seed, c, want.Len())
		}
	}
}

// TestRankKernelGOMAXPROCSSweep varies GOMAXPROCS itself (the workers=0
// default path) and demands identical output, mirroring the parallel
// pipelines' GOMAXPROCS sweeps.
func TestRankKernelGOMAXPROCSSweep(t *testing.T) {
	g := gen.BarabasiAlbert(120, 6, 3)
	view := graph.WholeGraph(g)
	ref := TrianglesKernel(view, 1, KernelRank)
	ref2d := CountKernel(view, 1, Kernel2D)
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, procs := range []int{1, 2, 3, 7} {
		runtime.GOMAXPROCS(procs)
		got := TrianglesKernel(view, 0, KernelRank)
		if len(got) != len(ref) {
			t.Fatalf("GOMAXPROCS %d: %d triangles, want %d", procs, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("GOMAXPROCS %d: triangle %d is %v, want %v", procs, i, got[i], ref[i])
			}
		}
		if c := CountKernel(view, 0, Kernel2D); c != ref2d {
			t.Fatalf("GOMAXPROCS %d: 2D count %d, want %d", procs, c, ref2d)
		}
	}
}

// Test2DGridSweep pins the tiling-independence of the 2D path: any p
// must give the same count, including p=1 (one task) and p larger than
// the balanced tiling would pick.
func Test2DGridSweep(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		g := gen.ChungLu(100, 2.1, 10, seed)
		view := graph.WholeGraph(g)
		want := CountKernel(view, 2, KernelMerge)
		for _, p := range []int{1, 2, 3, 5, 8, 31} {
			if c := CountParallel2DGrid(view, 3, p); c != want {
				t.Fatalf("seed %d p=%d: count %d, want %d", seed, p, c, want)
			}
		}
	}
}

// TestRankKernelMultigraph checks parallel edges and loops collapse
// exactly as in the oracle, through the rank and 2D paths.
func TestRankKernelMultigraph(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1) // parallel
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 2) // loop
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(3, 5)
	view := graph.WholeGraph(b.Graph())
	if got := TrianglesKernel(view, 2, KernelRank); len(got) != 2 {
		t.Fatalf("multigraph: rank found %d triangles, want 2", len(got))
	}
	if c := CountParallel2D(view, 2); c != 2 {
		t.Fatalf("multigraph: 2D count %d, want 2", c)
	}
}

func TestKernelParse(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Kernel
	}{{"", KernelAuto}, {"auto", KernelAuto}, {"merge", KernelMerge}, {"rank", KernelRank}, {"2d", Kernel2D}} {
		k, err := ParseKernel(c.in)
		if err != nil || k != c.want {
			t.Fatalf("ParseKernel(%q) = %v, %v", c.in, k, err)
		}
	}
	if _, err := ParseKernel("quantum"); err == nil {
		t.Fatal("ParseKernel accepted an unknown kernel")
	}
	for _, k := range []Kernel{KernelAuto, KernelMerge, KernelRank, Kernel2D} {
		if k == KernelAuto {
			continue
		}
		back, err := ParseKernel(k.String())
		if err != nil || back != k {
			t.Fatalf("round trip %v -> %q -> %v, %v", k, k.String(), back, err)
		}
	}
}

// TestRankSkewedSpeedup is the acceptance check behind
// BenchmarkTriangleSkewed at test scale: on a preferential-attachment
// graph the rank kernel must beat the merge kernel single-threaded by
// 2x. Skipped in -short and under the race detector like every timing
// assertion.
func TestRankSkewedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing comparison skipped under the race detector")
	}
	g := gen.BarabasiAlbert(1<<16, 8, 7)
	view := graph.WholeGraph(g)

	start := time.Now()
	ref := TrianglesKernel(view, 1, KernelMerge)
	merge := time.Since(start)

	start = time.Now()
	got := TrianglesKernel(view, 1, KernelRank)
	rank := time.Since(start)

	if len(got) != len(ref) {
		t.Fatalf("rank %d triangles, merge %d", len(got), len(ref))
	}
	speedup := float64(merge) / float64(rank)
	t.Logf("BA n=%d m=%d triangles=%d merge=%v rank=%v speedup=%.1fx",
		g.N(), g.M(), len(ref), merge, rank, speedup)
	if speedup < 2 {
		t.Errorf("speedup %.2fx below the 2x acceptance bar (merge=%v rank=%v)", speedup, merge, rank)
	}
}
