package triangle

import (
	"sync"

	"dexpander/internal/congest"
	"dexpander/internal/graph"
)

// Naive runs the folklore CONGEST algorithm: every vertex streams its
// entire (alive) neighbor list to every neighbor, one id per edge per
// round, then checks which of its neighbors' neighbors close a triangle
// with it. Round complexity is exactly the maximum alive degree plus one
// — Theta(n) on dense graphs, the baseline the paper's ~O(n^{1/3})
// algorithm beats.
func Naive(view *graph.Sub, seed uint64) (*Set, congest.Stats, error) {
	out := NewSet()
	var mu sync.Mutex
	// Precompute the number of pipeline rounds: max alive degree.
	maxDeg := 0
	view.Members().ForEach(func(v int) {
		if d := aliveNeighbors(view, v); len(d) > maxDeg {
			maxDeg = len(d)
		}
	})
	eng := congest.New(view, congest.Config{Seed: seed, MaxWords: 1})
	err := eng.Run(func(nd *congest.Node) {
		v := nd.V()
		mine := make([]int, nd.Degree())
		for p := range mine {
			mine[p] = nd.NeighborID(p)
		}
		known := make(map[int]map[int]bool, nd.Degree()) // neighbor -> its reported neighbors
		for _, u := range mine {
			known[u] = make(map[int]bool)
		}
		for r := 0; r < maxDeg; r++ {
			if r < len(mine) {
				for p := 0; p < nd.Degree(); p++ {
					nd.Send(p, int64(mine[r]))
				}
			}
			// Messages staged in round r are delivered by this Next.
			for _, m := range nd.Next() {
				known[nd.NeighborID(m.Port)][int(m.Words[0])] = true
			}
		}
		mu.Lock()
		for _, u := range mine {
			if u <= v {
				continue
			}
			for _, w := range mine {
				if w <= u {
					continue
				}
				if known[u][w] {
					out.Add(Triangle{A: v, B: u, C: w})
				}
			}
		}
		mu.Unlock()
	})
	if err != nil {
		return nil, eng.Stats(), err
	}
	return out, eng.Stats(), nil
}

func aliveNeighbors(view *graph.Sub, v int) []int {
	g := view.Base()
	var out []int
	for _, a := range g.Neighbors(v) {
		if view.Usable(a.Edge) && a.To != v {
			out = append(out, a.To)
		}
	}
	return out
}
