package triangle

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"dexpander/internal/gen"
	"dexpander/internal/graph"
	"dexpander/internal/par"
)

// TestEnumerateCheckpointIsTransparent: a never-firing probe is consulted
// but leaves the triangle set and cost accounting bit-identical.
func TestEnumerateCheckpointIsTransparent(t *testing.T) {
	g := gen.RingOfCliques(5, 10, 2)
	view := graph.WholeGraph(g)
	opt := Options{Seed: 9}
	plain, plainStats, err := Enumerate(view, opt)
	if err != nil {
		t.Fatal(err)
	}

	var probes atomic.Int64
	opt.Check = func() error { probes.Add(1); return nil }
	checked, checkedStats, err := Enumerate(view, opt)
	if err != nil {
		t.Fatal(err)
	}
	if probes.Load() == 0 {
		t.Fatal("checkpoint was never consulted")
	}
	if plain.Checksum() != checked.Checksum() || plain.Len() != checked.Len() {
		t.Fatalf("checkpointed enumeration diverged: %d/%#x vs %d/%#x",
			plain.Len(), plain.Checksum(), checked.Len(), checked.Checksum())
	}
	if plainStats != checkedStats {
		t.Fatalf("stats diverged:\nplain   %+v\nchecked %+v", plainStats, checkedStats)
	}
}

// TestEnumerateCanceled: both a pre-canceled context and a probe firing
// mid-run abort the enumeration with the underlying cause.
func TestEnumerateCanceled(t *testing.T) {
	g := gen.RingOfCliques(5, 10, 2)
	view := graph.WholeGraph(g)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Enumerate(view, Options{Seed: 9, Check: par.CheckpointFromContext(ctx)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled enumerate: %v", err)
	}

	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var probes atomic.Int64
		check := func() error {
			if probes.Add(1) > 5 {
				return boom
			}
			return nil
		}
		_, _, err := Enumerate(view, Options{Seed: 9, Workers: workers, Check: check})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: mid-run canceled enumerate: %v", workers, err)
		}
	}
}

// TestCountKernelCheckCancel covers each kernel's counting path: a
// pre-canceled probe aborts, a never-firing probe reproduces the exact
// uncanceled count.
func TestCountKernelCheckCancel(t *testing.T) {
	g := gen.GNP(48, 0.3, 5)
	view := graph.WholeGraph(g)
	want := BruteForce(view).Len()
	boom := errors.New("boom")
	for _, k := range []Kernel{KernelMerge, KernelRank, Kernel2D} {
		for _, workers := range []int{1, 4} {
			if _, err := CountKernelCheck(view, workers, k, func() error { return boom }); !errors.Is(err, boom) {
				t.Fatalf("kernel=%v workers=%d: pre-canceled count: %v", k, workers, err)
			}
			var probes atomic.Int64
			got, err := CountKernelCheck(view, workers, k, func() error { probes.Add(1); return nil })
			if err != nil {
				t.Fatalf("kernel=%v workers=%d: %v", k, workers, err)
			}
			if probes.Load() == 0 {
				t.Fatalf("kernel=%v workers=%d: checkpoint never consulted", k, workers)
			}
			if got != want {
				t.Fatalf("kernel=%v workers=%d: count %d, want %d", k, workers, got, want)
			}
		}
	}
}

// TestSetKernelCheckCancel mirrors the counting coverage for the Set
// entry point (2D resolves to rank for enumeration).
func TestSetKernelCheckCancel(t *testing.T) {
	g := gen.GNP(48, 0.3, 5)
	view := graph.WholeGraph(g)
	want := BruteForce(view)
	boom := errors.New("boom")
	for _, k := range []Kernel{KernelMerge, KernelRank} {
		if _, err := SetKernelCheck(view, 4, k, func() error { return boom }); !errors.Is(err, boom) {
			t.Fatalf("kernel=%v: pre-canceled set: %v", k, err)
		}
		set, err := SetKernelCheck(view, 4, k, func() error { return nil })
		if err != nil {
			t.Fatalf("kernel=%v: %v", k, err)
		}
		if set.Checksum() != want.Checksum() || set.Len() != want.Len() {
			t.Fatalf("kernel=%v: checkpointed set diverged", k)
		}
	}
}
