// Package triangle implements distributed triangle enumeration: the
// paper's ~O(n^{1/3})-round CONGEST algorithm (Theorem 2) built on the
// expander decomposition and expander routing, together with the
// baselines it is compared against — a brute-force oracle, the naive
// CONGEST neighborhood-exchange algorithm, and the Dolev–Lenzen–Peled
// deterministic CONGESTED-CLIQUE algorithm whose Omega(n^{1/3}/log n)
// bound the paper matches from the CONGEST side.
package triangle

import (
	"sort"

	"dexpander/internal/graph"
)

// Triangle is a triple of vertices with A < B < C.
type Triangle struct {
	A, B, C int
}

// Key packs the triangle for set membership (vertex ids < 2^21).
func (t Triangle) Key() int64 {
	return int64(t.A)<<42 | int64(t.B)<<21 | int64(t.C)
}

// MakeTriangle sorts three distinct vertices into a Triangle.
func MakeTriangle(x, y, z int) Triangle {
	if x > y {
		x, y = y, x
	}
	if y > z {
		y, z = z, y
	}
	if x > y {
		x, y = y, x
	}
	return Triangle{A: x, B: y, C: z}
}

// Set is a deduplicating triangle collection.
type Set struct {
	m map[int64]Triangle
}

// NewSet returns an empty set.
func NewSet() *Set { return &Set{m: make(map[int64]Triangle)} }

// newSetSized returns an empty set with capacity for n triangles.
func newSetSized(n int) *Set { return &Set{m: make(map[int64]Triangle, n)} }

// Add inserts a triangle.
func (s *Set) Add(t Triangle) { s.m[t.Key()] = t }

// Len returns the number of distinct triangles.
func (s *Set) Len() int { return len(s.m) }

// Has reports membership.
func (s *Set) Has(t Triangle) bool {
	_, ok := s.m[t.Key()]
	return ok
}

// Merge inserts every triangle of o. Set semantics make the result
// independent of merge order, so concurrent producers can be folded in
// any sequence (Enumerate merges per-component sets in component order).
func (s *Set) Merge(o *Set) {
	for k, t := range o.m {
		s.m[k] = t
	}
}

// Sorted returns the triangles in lexicographic order.
func (s *Set) Sorted() []Triangle {
	out := make([]Triangle, 0, len(s.m))
	for _, t := range s.m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		if out[i].B != out[j].B {
			return out[i].B < out[j].B
		}
		return out[i].C < out[j].C
	})
	return out
}

// HashWords digests a word sequence with 64-bit FNV-1a, byte by byte in
// little-endian order. It is the one digest primitive behind every
// cross-run validation checksum (Set.Checksum here, the bench subsystem's
// cell checksums), so the constants live in exactly one place.
func HashWords(words ...uint64) uint64 {
	h := uint64(14695981039346656037)
	for _, w := range words {
		for shift := 0; shift < 64; shift += 8 {
			h ^= (w >> shift) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

// Checksum returns an order-independent FNV-1a digest of the triangle
// set: equal sets have equal checksums regardless of insertion order, so
// benchmark runs can validate outputs across processes without shipping
// the full set.
func (s *Set) Checksum() uint64 {
	var sum uint64
	for k := range s.m {
		// Commutative combine keeps the digest order-independent.
		sum += HashWords(uint64(k))
	}
	// Mix in the cardinality so the empty set and unlucky cancellations
	// stay distinguishable.
	return sum ^ HashWords(uint64(len(s.m)))
}

// Equal reports whether two sets hold exactly the same triangles.
func (s *Set) Equal(o *Set) bool {
	if s.Len() != o.Len() {
		return false
	}
	for k := range s.m {
		if _, ok := o.m[k]; !ok {
			return false
		}
	}
	return true
}

// BruteForce enumerates every triangle of the view's usable edges by
// neighbor-set intersection in O(sum_v deg(v)^2). It is the ground-truth
// oracle for every test and benchmark.
func BruteForce(view *graph.Sub) *Set {
	g := view.Base()
	out := NewSet()
	adj := make([]map[int]bool, g.N())
	view.Members().ForEach(func(v int) {
		adj[v] = make(map[int]bool)
	})
	for e := 0; e < g.M(); e++ {
		if !view.Usable(e) || g.IsLoop(e) {
			continue
		}
		u, v := g.EdgeEndpoints(e)
		adj[u][v] = true
		adj[v][u] = true
	}
	view.Members().ForEach(func(v int) {
		for x := range adj[v] {
			if x <= v {
				continue
			}
			for y := range adj[v] {
				if y <= x {
					continue
				}
				if adj[x][y] {
					out.Add(Triangle{A: v, B: x, C: y})
				}
			}
		}
	})
	return out
}

// Count returns the number of triangles without materializing a set.
func Count(view *graph.Sub) int { return BruteForce(view).Len() }
