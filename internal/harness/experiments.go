package harness

import (
	"fmt"
	"math"

	"dexpander/internal/core"
	"dexpander/internal/dnibble"
	"dexpander/internal/gen"
	"dexpander/internal/graph"
	"dexpander/internal/ldd"
	"dexpander/internal/nibble"
	"dexpander/internal/rng"
	"dexpander/internal/route"
	"dexpander/internal/spectral"
	"dexpander/internal/triangle"
)

// Scale controls experiment sizes: tests use Small, benchmarks Default.
type Scale int

const (
	// Small keeps every experiment under a second or two.
	Small Scale = iota + 1
	// Default is the benchmark scale.
	Default
)

// E1 (Theorem 1): distributed expander decomposition over growing
// ring-of-cliques instances: measured CONGEST rounds, achieved eps,
// certified component conductance.
func E1Decomposition(scale Scale, seed uint64) (*Table, error) {
	sizes := []int{3, 4, 6}
	cliqueSize := 12
	if scale == Small {
		sizes = []int{3, 4}
		cliqueSize = 8
	}
	t := &Table{
		Title:   "E1 (Theorem 1): (eps,phi)-expander decomposition, distributed subroutines",
		Headers: []string{"n", "m", "parts", "epsAchieved", "phiTarget", "minPhi(cert)", "rounds", "messages"},
	}
	var ns, rounds []float64
	for _, k := range sizes {
		g := gen.RingOfCliques(k, cliqueSize, seed)
		view := graph.WholeGraph(g)
		dec, err := core.Decompose(view, core.Options{
			Eps: 0.6, K: 2, Preset: nibble.Practical, Seed: seed + uint64(k),
		}, dnibble.DistSubroutines{Preset: nibble.Practical})
		if err != nil {
			return nil, fmt.Errorf("E1 k=%d: %w", k, err)
		}
		if err := dec.CheckPartition(view); err != nil {
			return nil, fmt.Errorf("E1 k=%d: %w", k, err)
		}
		q := dec.Evaluate(view)
		t.AddRow(g.N(), g.M(), dec.Count, dec.EpsAchieved, dec.PhiTarget,
			q.MinPhiLower, dec.Stats.Rounds, dec.Stats.Messages)
		ns = append(ns, float64(g.N()))
		rounds = append(rounds, float64(dec.Stats.Rounds))
	}
	if e, r2 := FitPowerLaw(ns, rounds); r2 > 0 {
		t.AddNote("rounds ~ n^%.2f (R^2=%.2f); paper: O(n^{2/k} poly(1/phi, log n)) with k=2", e, r2)
	}
	t.AddNote("contract: epsAchieved <= 0.6 and minPhi >= phiTarget on every row")
	return t, nil
}

// E1b (Theorem 1 trade-off): sweep k on a satellite-clique instance — a
// core expander with low-balance satellite cuts, the configuration that
// sends components into Phase 2. The phi ladder bottom falls with k and
// the Phase 2 ladder gets exercised.
func E1KTradeoff(scale Scale, seed uint64) (*Table, error) {
	// Dimensions sized for Phase 2 peeling: satellite conductance
	// 1/(s(s-1)+1) below phi_1 = phi_0/2 and satellite volume below the
	// (eps/12) Vol gate (eps = 0.9, core K70, satellites K19).
	coreN, satSize, satCount := 70, 19, 2
	g := gen.SatelliteCliques(coreN, satSize, satCount, seed)
	view := graph.WholeGraph(g)
	t := &Table{
		Title:   "E1b (Theorem 1): k trade-off (satellite cliques; Phase 2 active)",
		Headers: []string{"k", "phiTarget", "parts", "epsAchieved", "phase2Iters", "singletons", "rounds"},
	}
	for _, kk := range []int{1, 2, 3, 4} {
		dec, err := core.Decompose(view, core.Options{
			Eps: 0.9, K: kk, Preset: nibble.Practical, Seed: seed,
		}, core.SeqSubroutines{Preset: nibble.Practical})
		if err != nil {
			return nil, fmt.Errorf("E1b k=%d: %w", kk, err)
		}
		if err := dec.CheckPartition(view); err != nil {
			return nil, fmt.Errorf("E1b k=%d: %w", kk, err)
		}
		t.AddRow(kk, dec.PhiTarget, dec.Count, dec.EpsAchieved,
			dec.Phase2MaxIterations, dec.Singletons, dec.Stats.Rounds)
	}
	t.AddNote("phi = (eps/log n)^{2^{O(k)}}: the ladder bottom decreases in k")
	t.AddNote("rounds are zero here: the k sweep isolates quality, using sequential subroutines")
	return t, nil
}

// E2 (Theorem 2): triangle enumeration rounds vs n on the lower-bound
// family G(n, 1/2), with correctness verified against brute force.
func E2TriangleScaling(scale Scale, seed uint64) (*Table, error) {
	sizes := []int{24, 48, 96}
	if scale == Small {
		sizes = []int{16, 24}
	}
	t := &Table{
		Title:   "E2 (Theorem 2): CONGEST triangle enumeration on G(n, 1/2)",
		Headers: []string{"n", "m", "triangles", "verified", "rounds", "rounds/groups", "recursions"},
	}
	var ns, rounds []float64
	for _, n := range sizes {
		g := gen.GNP(n, 0.5, seed+uint64(n))
		view := graph.WholeGraph(g)
		want := triangle.BruteForce(view)
		got, stats, err := triangle.Enumerate(view, triangle.Options{Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("E2 n=%d: %w", n, err)
		}
		t.AddRow(n, g.M(), got.Len(), got.Equal(want),
			stats.Rounds, float64(stats.Rounds)/float64(triangle.GroupCount(n)), stats.Recursions)
		ns = append(ns, float64(n))
		rounds = append(rounds, float64(stats.Rounds))
	}
	if e, r2 := FitPowerLaw(ns, rounds); r2 > 0 {
		t.AddNote("rounds ~ n^%.2f (R^2=%.2f); paper: ~O(n^{1/3}), lower bound Omega(n^{1/3}/log n)", e, r2)
	}
	return t, nil
}

// E3 (Theorem 3): nearly most balanced sparse cut. Sweep planted balance
// b on unbalanced dumbbells; the returned balance must clear
// min(b/2, 1/48) and conductance must stay under TransferH(phi).
func E3SparseCutBalance(scale Scale, seed uint64) (*Table, error) {
	big := 32
	smalls := []int{8, 16, 32}
	if scale == Small {
		big = 16
		smalls = []int{6, 16}
	}
	t := &Table{
		Title:   "E3 (Theorem 3): nearly most balanced sparse cut, planted balance sweep",
		Headers: []string{"plantedB", "floor=min(b/2,1/48)", "balance", "phiCut", "boundH", "ok"},
	}
	for _, s2 := range smalls {
		g := gen.UnbalancedDumbbell(big, s2, seed)
		view := graph.WholeGraph(g)
		small := graph.NewVSet(g.N())
		for v := big; v < big+s2; v++ {
			small.Add(v)
		}
		b := view.Balance(small)
		phi := 2 * view.Conductance(small)
		// The paper runs s = Theta(g log(1/p)) ParallelNibble rounds so
		// that even balance-b cuts are hit w.h.p.; the degree-weighted
		// start lands in a balance-b side with probability b per draw,
		// so scale the practical iteration budget like 1/b.
		pr := nibble.PracticalParams(view, nibble.PartitionPhi(view, phi, nibble.Practical))
		pr.EmptyStop = int(8/b) + 8
		pr.SCap = pr.EmptyStop * 2
		res := nibble.Partition(view, pr, rng.New(seed+uint64(s2)))
		floor := math.Min(b/2, 1.0/48.0)
		h := nibble.TransferH(view, phi, nibble.Practical)
		ok := !res.Empty() && res.Balance >= floor && res.Conductance <= h
		t.AddRow(b, floor, res.Balance, res.Conductance, h, ok)
	}
	t.AddNote("Theorem 3: bal(C) >= min(b/2, 1/48), Phi(C) <= h(phi); iteration budget ~ 1/b per the paper's s")
	return t, nil
}

// E3b (Theorem 3, negative case): on expanders the cut is empty or still
// h(phi)-sparse.
func E3ExpanderCase(scale Scale, seed uint64) (*Table, error) {
	n := 64
	if scale == Small {
		n = 32
	}
	t := &Table{
		Title:   "E3b (Theorem 3): expander case (Phi(G) > phi)",
		Headers: []string{"graph", "phi", "empty", "phiCut", "boundH", "ok"},
	}
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"matchings", gen.ExpanderByMatchings(n, 6, seed)},
		{"complete", gen.Complete(n / 2)},
		{"hypercube", gen.Hypercube(5)},
	} {
		view := graph.WholeGraph(tc.g)
		phi := 0.01
		res := nibble.SparseCut(view, phi, nibble.Practical, rng.New(seed))
		h := nibble.TransferH(view, phi, nibble.Practical)
		ok := res.Empty() || res.Conductance <= h
		t.AddRow(tc.name, phi, res.Empty(), res.Conductance, h, ok)
	}
	return t, nil
}

// E4 (Theorem 4): low-diameter decomposition sweep over beta on long
// paths: component diameter vs the O(log^2 n / beta^2) bound and cut
// fraction vs 3*beta. The path length is sized per beta so local
// A-balls stay sparse (m > 4AB), the regime where the decomposition has
// work to do.
func E4LDD(scale Scale, seed uint64) (*Table, error) {
	betas := []float64{0.3, 0.5, 0.7, 0.9}
	budget := 9000
	if scale == Small {
		betas = []float64{0.5, 0.9}
		budget = 2500
	}
	t := &Table{
		Title:   "E4 (Theorem 4): low-diameter decomposition on paths (length sized per beta)",
		Headers: []string{"beta", "n", "parts", "maxDiam", "diamBound", "cutFrac", "3*beta", "ok"},
	}
	for _, beta := range betas {
		n := pathSizeForBeta(beta, budget)
		g := gen.Path(n)
		view := graph.WholeGraph(g)
		pr := ldd.NewParams(g.N(), beta, ldd.Practical)
		res := ldd.Decompose(view, pr, rng.New(seed+uint64(beta*100)))
		d := res.MaxDiameter(view)
		bound := 2*(pr.T+1) + 20*pr.A*pr.B + 2
		frac := res.CutFraction(view)
		t.AddRow(beta, n, res.Count, d, bound, frac, 3*beta, d <= bound && frac <= 3*beta)
	}
	t.AddNote("diamBound instantiates O(log^2 n / beta^2) with the practical constants")
	return t, nil
}

// pathSizeForBeta returns a path length comfortably inside the sparse
// regime (m > 8AB with A ~ 2 ln n / beta, B ~ ln n / beta), capped by
// the runtime budget.
func pathSizeForBeta(beta float64, budget int) int {
	for n := 400; n < budget; n += 200 {
		lnN := math.Log(float64(n))
		a := 2*lnN/beta + 2
		b := lnN/beta + 1
		if float64(n-1) > 8*a*b {
			return n
		}
	}
	return budget
}

// E4b (Theorem 4, distributed): the full distributed pipeline with
// measured rounds on long paths sized into the sparse regime per beta.
func E4Distributed(scale Scale, seed uint64) (*Table, error) {
	betas := []float64{0.7, 0.9}
	budget := 1400
	if scale == Small {
		betas = []float64{0.9}
		budget = 700
	}
	t := &Table{
		Title:   "E4b (Theorem 4): distributed LDD (full pipeline), path graphs",
		Headers: []string{"beta", "n", "parts", "cutFrac", "rounds", "messages"},
	}
	for _, beta := range betas {
		n := pathSizeForBeta(beta, budget)
		g := gen.Path(n)
		view := graph.WholeGraph(g)
		pr := ldd.NewParams(g.N(), beta, ldd.Practical)
		res, stats, err := ldd.DistDecompose(view, pr, seed)
		if err != nil {
			return nil, fmt.Errorf("E4b beta=%v: %w", beta, err)
		}
		t.AddRow(beta, n, res.Count, res.CutFraction(view), stats.Rounds, stats.Messages)
	}
	t.AddNote("rounds are poly(log n, 1/beta): no diameter term despite the path topology")
	return t, nil
}

// E5 (Lemma 12): per-edge cut probability of Clustering(beta) <= 2 beta.
func E5ClusteringCutProb(scale Scale, seed uint64) (*Table, error) {
	k, trials := 16, 400
	if scale == Small {
		k, trials = 10, 120
	}
	g := gen.Torus(k)
	view := graph.WholeGraph(g)
	t := &Table{
		Title:   "E5 (Lemma 12): Clustering(beta) edge-cut probability",
		Headers: []string{"beta", "maxEdgeFreq", "meanCutFrac", "2*beta", "ok"},
	}
	for _, beta := range []float64{0.2, 0.4, 0.6} {
		pr := ldd.NewParams(g.N(), beta, ldd.Practical)
		maxFreq, mean := ldd.EdgeCutProbability(view, pr, trials, seed)
		slack := 2*beta + 3*math.Sqrt(2*beta/float64(trials))
		t.AddRow(beta, maxFreq, mean, 2*beta, maxFreq <= slack)
	}
	t.AddNote("ok allows 3-sigma sampling noise over the trial count")
	return t, nil
}

// E6 (GKS trade-off): router preprocessing vs query rounds as the
// parameter k (hub count m^{1/k}) varies.
func E6RoutingTradeoff(scale Scale, seed uint64) (*Table, error) {
	n := 96
	if scale == Small {
		n = 48
	}
	g := gen.ExpanderByMatchings(n, 6, seed)
	view := graph.WholeGraph(g)
	t := &Table{
		Title:   "E6 (GKS, Section 3): routing preprocessing/query trade-off",
		Headers: []string{"k", "hubs", "buildRounds", "queryRounds", "messages"},
	}
	for _, k := range []int{1, 2, 3, 4} {
		hubs := route.HubCountForK(view, k)
		rt, err := route.Build(view, hubs, seed)
		if err != nil {
			return nil, fmt.Errorf("E6 k=%d: %w", k, err)
		}
		reqs := route.UniformRandomRequests(rt, seed+uint64(k))
		_, qs, err := rt.Route(reqs)
		if err != nil {
			return nil, fmt.Errorf("E6 k=%d: %w", k, err)
		}
		t.AddRow(k, hubs, rt.BuildStats.Rounds, qs.Rounds, qs.Messages)
	}
	t.AddNote("more hubs (smaller k): preprocessing up, query congestion down — GKS Lemmas 3.2-3.4 shape")
	return t, nil
}

// E7 (Section 3): triangle enumeration across models on one instance
// family: ours (CONGEST) vs DLP (CONGESTED-CLIQUE) vs naive (CONGEST).
func E7ModelComparison(scale Scale, seed uint64) (*Table, error) {
	sizes := []int{24, 48, 96}
	if scale == Small {
		sizes = []int{16, 32}
	}
	t := &Table{
		Title:   "E7: triangle enumeration, CONGEST (ours) vs CONGESTED-CLIQUE (DLP) vs naive CONGEST",
		Headers: []string{"n", "triangles", "oursRounds", "cliqueRounds", "naiveRounds", "allCorrect"},
	}
	for _, n := range sizes {
		g := gen.GNP(n, 0.5, seed+uint64(n))
		view := graph.WholeGraph(g)
		want := triangle.BruteForce(view)
		ours, os, err := triangle.Enumerate(view, triangle.Options{Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("E7 n=%d: %w", n, err)
		}
		clique, cs, err := triangle.CliqueDLP(view, seed)
		if err != nil {
			return nil, fmt.Errorf("E7 n=%d clique: %w", n, err)
		}
		naive, nvs, err := triangle.Naive(view, seed)
		if err != nil {
			return nil, fmt.Errorf("E7 n=%d naive: %w", n, err)
		}
		correct := ours.Equal(want) && clique.Equal(want) && naive.Equal(want)
		t.AddRow(n, want.Len(), os.Rounds, cs.Rounds, nvs.Rounds, correct)
	}
	t.AddNote("paper: CONGEST matches CONGESTED-CLIQUE up to polylog; naive CONGEST is Theta(maxdeg)")
	return t, nil
}

// TriangleCustom runs the E2/E7 triangle comparison on caller-supplied
// sizes (the trianglebench CLI's -sizes flag).
func TriangleCustom(sizes []int, seed uint64) (*Table, error) {
	t := &Table{
		Title:   "Triangle enumeration on G(n, 1/2), custom sizes",
		Headers: []string{"n", "m", "triangles", "verified", "oursRounds", "cliqueRounds", "naiveRounds"},
	}
	for _, n := range sizes {
		g := gen.GNP(n, 0.5, seed+uint64(n))
		view := graph.WholeGraph(g)
		want := triangle.BruteForce(view)
		ours, os, err := triangle.Enumerate(view, triangle.Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		_, cs, err := triangle.CliqueDLP(view, seed)
		if err != nil {
			return nil, err
		}
		_, ns, err := triangle.Naive(view, seed)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, g.M(), want.Len(), ours.Equal(want), os.Rounds, cs.Rounds, ns.Rounds)
	}
	return t, nil
}

// E8 (Section 1, Jerrum-Sinclair): mixing time vs conductance bounds on
// families with known structure.
func E8Mixing(scale Scale, seed uint64) (*Table, error) {
	t := &Table{
		Title:   "E8: Theta(1/Phi) <= tau_mix <= Theta(log n / Phi^2)",
		Headers: []string{"graph", "n", "phiUpper(sweep)", "lambda2/2", "tauMix", "upperBound", "ok"},
	}
	gs := []struct {
		name string
		g    *graph.Graph
	}{
		{"hypercube", gen.Hypercube(6)},
		{"torus", gen.Torus(10)},
		{"ring", gen.RingOfCliques(4, 8, seed)},
		{"expander", gen.ExpanderByMatchings(64, 6, seed)},
	}
	if scale == Small {
		gs = gs[:2]
	}
	for _, tc := range gs {
		view := graph.WholeGraph(tc.g)
		phiUp := spectral.ConductanceSweepUpper(view, []int{0, 1}, 40)
		lower := spectral.CheegerLower(view, 600, seed)
		tau := spectral.MixingTime(view, 0, 0.5, 200000)
		n := float64(tc.g.N())
		upper := 40 * math.Log(n) / (lower * lower)
		ok := float64(tau) <= upper && float64(tau) >= 0.05/phiUp
		t.AddRow(tc.name, tc.g.N(), phiUp, lower, tau, upper, ok)
	}
	return t, nil
}

// E9 (Section 2): Phase 1 recursion depth stays below d = O(log n / eps)
// and Phase 2 level iterations below the tau budget.
func E9PhaseDepths(scale Scale, seed uint64) (*Table, error) {
	coreN, satCount := 70, 2
	ringK, ringS := 6, 10
	if scale == Small {
		ringK, ringS = 4, 8
	}
	t := &Table{
		Title:   "E9 (Section 2): phase structure instrumentation",
		Headers: []string{"workload", "eps", "dBound", "phase1Depth", "phase2Iters", "ok"},
	}
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"ring", gen.RingOfCliques(ringK, ringS, seed)},
		{"satellites", gen.SatelliteCliques(coreN, 19, satCount, seed)},
	}
	for _, w := range workloads {
		view := graph.WholeGraph(w.g)
		for _, eps := range []float64{0.6, 0.9} {
			dec, err := core.Decompose(view, core.Options{
				Eps: eps, K: 2, Preset: nibble.Practical, Seed: seed,
			}, core.SeqSubroutines{Preset: nibble.Practical})
			if err != nil {
				return nil, fmt.Errorf("E9 %s eps=%v: %w", w.name, eps, err)
			}
			n := float64(w.g.N())
			d := int(math.Ceil(math.Log(n*n) / -math.Log(1-eps/12)))
			t.AddRow(w.name, eps, d, dec.Phase1Depth, dec.Phase2MaxIterations,
				dec.Phase1Depth <= d)
		}
	}
	t.AddNote("Lemma 1: recursion depth <= d; Lemma 2: each Phase-2 level survives <= 2 tau productive iterations")
	t.AddNote("the satellite workload exercises Phase 2 (low-balance cuts below the eps/12 gate)")
	return t, nil
}

// E10 (Lemma 3): Vol(Z_{u,phi,b}) <= (t0+1)/(2 eps_b).
func E10WalkSupport(scale Scale, seed uint64) (*Table, error) {
	k, s := 4, 8
	if scale == Small {
		k, s = 3, 6
	}
	g := gen.RingOfCliques(k, s, seed)
	view := graph.WholeGraph(g)
	pr := nibble.PracticalParams(view, 0.1)
	t0 := 12 // truncated horizon keeps the oracle walk cheap
	t := &Table{
		Title:   "E10 (Lemma 3): walk support volume vs (t0+1)/(2 eps_b)",
		Headers: []string{"b", "epsB", "VolZ", "bound", "ok"},
	}
	for _, b := range []int{1, 3, 5} {
		epsB := pr.EpsB(b)
		z := spectral.WalkSupportSet(view, 0, t0, epsB)
		bound := float64(t0+1) / (2 * epsB)
		vol := float64(g.Vol(z))
		t.AddRow(b, epsB, vol, bound, vol <= bound)
	}
	return t, nil
}

// All runs every experiment and returns the rendered tables; the first
// error aborts.
func All(scale Scale, seed uint64) ([]*Table, error) {
	runs := []func(Scale, uint64) (*Table, error){
		E1Decomposition, E1KTradeoff, E2TriangleScaling, E3SparseCutBalance,
		E3ExpanderCase, E4LDD, E4Distributed, E5ClusteringCutProb,
		E6RoutingTradeoff, E7ModelComparison, E8Mixing, E9PhaseDepths,
		E10WalkSupport, E11EngineThroughput,
	}
	var out []*Table
	for _, run := range runs {
		tbl, err := run(scale, seed)
		if err != nil {
			return out, err
		}
		out = append(out, tbl)
	}
	return out, nil
}
