package harness

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Headers: []string{"a", "longheader"},
	}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("xyz", 0.00001)
	tbl.AddNote("note %d", 7)
	s := tbl.String()
	for _, want := range []string{"demo", "longheader", "xyz", "2.50", "1.00e-05", "* note 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestFitPowerLawExact(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 1.5)
	}
	e, r2 := FitPowerLaw(xs, ys)
	if math.Abs(e-1.5) > 1e-9 || r2 < 0.999 {
		t.Fatalf("fit = (%v, %v), want (1.5, ~1)", e, r2)
	}
}

func TestFitPowerLawDegenerate(t *testing.T) {
	if e, r2 := FitPowerLaw([]float64{1}, []float64{2}); e != 0 || r2 != 0 {
		t.Fatal("single point should yield zero fit")
	}
	if e, _ := FitPowerLaw([]float64{0, -1}, []float64{1, 2}); e != 0 {
		t.Fatal("invalid points should be skipped")
	}
	// Constant y: exponent 0.
	e, _ := FitPowerLaw([]float64{1, 2, 4}, []float64{5, 5, 5})
	if math.Abs(e) > 1e-9 {
		t.Fatalf("constant fit exponent = %v", e)
	}
}

// The experiment smoke tests run each table at Small scale and require
// every verification column to read true.
func checkAllOK(t *testing.T, tbl *Table, okCol int) {
	t.Helper()
	for _, row := range tbl.Rows {
		if okCol < len(row) && row[okCol] == "false" {
			t.Errorf("experiment row failed its bound:\n%s", tbl)
		}
	}
}

func TestE1Small(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed-subroutine experiment")
	}
	tbl, err := E1Decomposition(Small, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestE1KSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("k-tradeoff sweep")
	}
	tbl, err := E1KTradeoff(Small, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestE2Small(t *testing.T) {
	tbl, err := E2TriangleScaling(Small, 7)
	if err != nil {
		t.Fatal(err)
	}
	// verified column (index 3) must be true everywhere.
	for _, row := range tbl.Rows {
		if row[3] != "true" {
			t.Fatalf("unverified triangle row:\n%s", tbl)
		}
	}
}

func TestE3Small(t *testing.T) {
	tbl, err := E3SparseCutBalance(Small, 8)
	if err != nil {
		t.Fatal(err)
	}
	checkAllOK(t, tbl, 5)
}

func TestE3bSmall(t *testing.T) {
	tbl, err := E3ExpanderCase(Small, 9)
	if err != nil {
		t.Fatal(err)
	}
	checkAllOK(t, tbl, 5)
}

func TestE4Small(t *testing.T) {
	tbl, err := E4LDD(Small, 10)
	if err != nil {
		t.Fatal(err)
	}
	checkAllOK(t, tbl, 6)
}

func TestE4bSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full Theorem 4 pipeline experiment")
	}
	tbl, err := E4Distributed(Small, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 at Small scale", len(tbl.Rows))
	}
}

func TestE5Small(t *testing.T) {
	tbl, err := E5ClusteringCutProb(Small, 12)
	if err != nil {
		t.Fatal(err)
	}
	checkAllOK(t, tbl, 4)
}

func TestE6Small(t *testing.T) {
	tbl, err := E6RoutingTradeoff(Small, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestE7Small(t *testing.T) {
	tbl, err := E7ModelComparison(Small, 14)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[5] != "true" {
			t.Fatalf("model disagreement:\n%s", tbl)
		}
	}
}

func TestE8Small(t *testing.T) {
	tbl, err := E8Mixing(Small, 15)
	if err != nil {
		t.Fatal(err)
	}
	checkAllOK(t, tbl, 6)
}

func TestE9Small(t *testing.T) {
	if testing.Short() {
		t.Skip("mixing-time experiment")
	}
	tbl, err := E9PhaseDepths(Small, 16)
	if err != nil {
		t.Fatal(err)
	}
	checkAllOK(t, tbl, 4)
}

func TestTriangleCustom(t *testing.T) {
	tbl, err := TriangleCustom([]int{12, 18}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[3] != "true" {
			t.Fatalf("custom run unverified:\n%s", tbl)
		}
	}
}

func TestAllSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	tables, err := All(Small, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 14 {
		t.Fatalf("got %d tables, want 14", len(tables))
	}
	for _, tbl := range tables {
		if tbl.Title == "" || len(tbl.Rows) == 0 {
			t.Fatalf("empty table: %+v", tbl)
		}
	}
}

func TestE10Small(t *testing.T) {
	tbl, err := E10WalkSupport(Small, 17)
	if err != nil {
		t.Fatal(err)
	}
	checkAllOK(t, tbl, 4)
}

func TestE11Small(t *testing.T) {
	tbl, err := E11EngineThroughput(Small, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}
