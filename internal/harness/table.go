// Package harness regenerates the paper's results: every theorem and key
// lemma has an experiment function that runs the relevant algorithms on
// the workloads of DESIGN.md's experiment index and renders a table of
// measured quantities next to the claimed bounds. The cmd binaries and
// the root-level benchmarks are thin wrappers over these functions.
package harness

import (
	"fmt"
	"math"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	// Title names the experiment (e.g. "E3 (Theorem 3) ...").
	Title string
	// Headers are the column names.
	Headers []string
	// Rows hold the formatted cells.
	Rows [][]string
	// Notes are appended below the table (bound statements, fits).
	Notes []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	sb.WriteString(t.Title)
	sb.WriteByte('\n')
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("  * ")
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	case math.Abs(v) >= 0.001:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}

// FitPowerLaw fits y = c * x^e by least squares in log-log space and
// returns the exponent e and the coefficient of determination R^2.
// Points with non-positive coordinates are skipped; fewer than two valid
// points yield (0, 0).
func FitPowerLaw(xs, ys []float64) (exponent, r2 float64) {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	n := float64(len(lx))
	if n < 2 {
		return 0, 0
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range lx {
		sx += lx[i]
		sy += ly[i]
		sxx += lx[i] * lx[i]
		sxy += lx[i] * ly[i]
		syy += ly[i] * ly[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0
	}
	exponent = (n*sxy - sx*sy) / den
	// R^2 from the correlation coefficient.
	varY := n*syy - sy*sy
	if varY == 0 {
		return exponent, 1
	}
	r := (n*sxy - sx*sy) / math.Sqrt(den*varY)
	return exponent, r * r
}
