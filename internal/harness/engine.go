package harness

import (
	"fmt"
	"time"

	"dexpander/internal/congest"
	"dexpander/internal/gen"
	"dexpander/internal/graph"
)

// E11EngineThroughput measures the simulation substrate itself: wall-clock
// round and word throughput of the congest engine on round-heavy torus
// workloads (every node sends on every port, every round), plus the cost
// split between the reusable Topology build and the per-run Engine setup.
// This is the experiment behind the ROADMAP's "as fast as the hardware
// allows" item: protocol experiments E1-E10 are all bounded by these
// numbers.
func E11EngineThroughput(scale Scale, seed uint64) (*Table, error) {
	type cfg struct{ k, rounds int }
	cases := []cfg{{50, 120}, {100, 120}}
	if scale == Small {
		cases = []cfg{{20, 40}, {40, 40}}
	}
	t := &Table{
		Title: "E11 (engine): congest round throughput, torus k x k, SendToAll per round",
		Headers: []string{"n", "m", "rounds", "rounds/sec", "Mwords/sec",
			"topoBuild(ms)", "engineSetup(ms)"},
	}
	for _, c := range cases {
		g := gen.Torus(c.k)
		view := graph.WholeGraph(g)

		t0 := time.Now()
		topo := congest.NewTopology(view)
		topoBuild := time.Since(t0)

		t0 = time.Now()
		eng := congest.NewEngine(topo, congest.Config{Seed: seed})
		setup := time.Since(t0)

		rounds := c.rounds
		t0 = time.Now()
		err := eng.Run(func(nd *congest.Node) {
			for r := 0; r < rounds; r++ {
				nd.SendToAll(int64(r), int64(nd.V()))
				nd.Next()
			}
		})
		elapsed := time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("E11 k=%d: %w", c.k, err)
		}
		st := eng.Stats()
		secs := elapsed.Seconds()
		t.AddRow(g.N(), g.M(), st.Rounds,
			fmt.Sprintf("%.1f", float64(st.Rounds)/secs),
			fmt.Sprintf("%.2f", float64(st.Words)/secs/1e6),
			fmt.Sprintf("%.2f", topoBuild.Seconds()*1e3),
			fmt.Sprintf("%.2f", setup.Seconds()*1e3))
	}
	t.AddNote("Topology is built once and reusable; Engine is the cheap per-run object")
	t.AddNote("delivery order is deterministic (sender index, then staging order): same seed => same Stats and traces for any worker count")
	return t, nil
}
