package route

import (
	"testing"

	"dexpander/internal/gen"
	"dexpander/internal/graph"
)

func buildOn(t *testing.T, g *graph.Graph, hubs int, seed uint64) *Router {
	t.Helper()
	rt, err := Build(graph.WholeGraph(g), hubs, seed)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestBuildOnExpander(t *testing.T) {
	g := gen.ExpanderByMatchings(64, 5, 1)
	rt := buildOn(t, g, 4, 7)
	if len(rt.Hubs()) != 4 {
		t.Fatalf("hubs = %d", len(rt.Hubs()))
	}
	if rt.BuildStats.Rounds == 0 {
		t.Fatal("no preprocessing rounds recorded")
	}
}

func TestBuildRejectsDisconnected(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {2, 3}})
	if _, err := Build(graph.WholeGraph(g), 2, 1); err == nil {
		t.Fatal("disconnected view accepted")
	}
}

func TestTreesSpanAndAreConsistent(t *testing.T) {
	g := gen.GNPConnected(50, 0.1, 3)
	rt := buildOn(t, g, 3, 11)
	for h := range rt.Hubs() {
		for v := 0; v < g.N(); v++ {
			if rt.dist[h][v] < 0 {
				t.Fatalf("hub %d: vertex %d unreached", h, v)
			}
			if v == rt.Hubs()[h] {
				if rt.dist[h][v] != 0 || rt.parent[h][v] != -1 {
					t.Fatalf("hub %d root state wrong", h)
				}
				continue
			}
			// Parent port leads to a vertex one closer to the hub.
			port := rt.parent[h][v]
			if port < 0 {
				t.Fatalf("hub %d: vertex %d has no parent", h, v)
			}
			// Walk one hop and verify distance decreases.
			var u int
			found := false
			for _, a := range g.Neighbors(v) {
				if !found {
					u = a.To
					_ = u
				}
				found = true
			}
			// Distances are BFS distances: parent dist = dist-1.
			pv := neighborByPort(g, v, port)
			if rt.dist[h][pv] != rt.dist[h][v]-1 {
				t.Fatalf("hub %d: parent of %d has dist %d, want %d",
					h, v, rt.dist[h][pv], rt.dist[h][v]-1)
			}
		}
	}
}

// neighborByPort resolves the engine's port numbering: ports enumerate
// usable incident non-loop edges in edge order, matching congest.New.
func neighborByPort(g *graph.Graph, v, port int) int {
	idx := 0
	for e := 0; e < g.M(); e++ {
		u, w := g.EdgeEndpoints(e)
		if u == w {
			continue
		}
		if u == v || w == v {
			if idx == port {
				return g.Other(e, v)
			}
			idx++
		}
	}
	return -1
}

func TestRouteAllToOne(t *testing.T) {
	g := gen.ExpanderByMatchings(32, 5, 2)
	rt := buildOn(t, g, 3, 5)
	var reqs []Request
	for v := 1; v < g.N(); v++ {
		reqs = append(reqs, Request{Src: v, Dst: 0, Payload: int64(v)})
	}
	out, stats, err := rt.Route(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(reqs) {
		t.Fatalf("delivered %d of %d", len(out), len(reqs))
	}
	seen := make(map[int64]bool)
	for _, d := range out {
		if d.Dst != 0 {
			t.Fatalf("misdelivery to %d", d.Dst)
		}
		if seen[d.Payload] {
			t.Fatalf("duplicate payload %d", d.Payload)
		}
		seen[d.Payload] = true
	}
	if stats.Rounds == 0 {
		t.Fatal("no rounds recorded")
	}
}

func TestRoutePermutation(t *testing.T) {
	g := gen.ExpanderByMatchings(48, 5, 3)
	rt := buildOn(t, g, 4, 9)
	var reqs []Request
	for v := 0; v < g.N(); v++ {
		reqs = append(reqs, Request{Src: v, Dst: (v + 17) % g.N(), Payload: int64(100 + v)})
	}
	out, _, err := rt.Route(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range out {
		src := int(d.Payload - 100)
		if (src+17)%g.N() != d.Dst {
			t.Fatalf("payload from %d delivered to %d", src, d.Dst)
		}
	}
}

func TestRouteSelfMessages(t *testing.T) {
	g := gen.Cycle(10)
	rt := buildOn(t, g, 2, 1)
	out, _, err := rt.Route([]Request{{Src: 3, Dst: 3, Payload: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Dst != 3 || out[0].Payload != 9 {
		t.Fatalf("self-delivery = %+v", out)
	}
}

func TestRouteRejectsNonMembers(t *testing.T) {
	g := gen.Cycle(8)
	members := graph.NewVSet(8)
	for v := 0; v < 8; v++ {
		members.Add(v)
	}
	rt := buildOn(t, g, 2, 2)
	if _, _, err := rt.Route([]Request{{Src: 0, Dst: 99, Payload: 1}}); err == nil {
		t.Fatal("accepted out-of-range destination")
	}
	_ = rt
	_ = members
}

func TestRouteGKSWorkload(t *testing.T) {
	g := gen.ExpanderByMatchings(64, 6, 4)
	rt := buildOn(t, g, 6, 13)
	reqs := UniformRandomRequests(rt, 21)
	out, stats, err := rt.Route(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(reqs) {
		t.Fatalf("delivered %d of %d", len(out), len(reqs))
	}
	// The workload has ~vol messages; on an expander the query should
	// finish in far fewer rounds than messages (pipelining works).
	if stats.Rounds > len(reqs) {
		t.Fatalf("query took %d rounds for %d requests: no pipelining", stats.Rounds, len(reqs))
	}
}

func TestHubCountForK(t *testing.T) {
	g := gen.ExpanderByMatchings(64, 6, 5)
	view := graph.WholeGraph(g)
	p1 := HubCountForK(view, 1) // m^1 capped at n
	p2 := HubCountForK(view, 2)
	p4 := HubCountForK(view, 4)
	if !(p1 >= p2 && p2 >= p4 && p4 >= 1) {
		t.Fatalf("hub counts not monotone: %d %d %d", p1, p2, p4)
	}
	if p1 != 64 {
		t.Fatalf("k=1 hub count = %d, want n", p1)
	}
}

func TestTradeoffMoreHubsFasterQueries(t *testing.T) {
	// The GKS-style trade-off: more hubs -> more preprocessing, fewer
	// query rounds (less per-tree congestion) on a fixed workload.
	g := gen.ExpanderByMatchings(96, 6, 6)
	few := buildOn(t, g, 1, 31)
	many := buildOn(t, g, 24, 31)
	if many.BuildStats.Rounds <= few.BuildStats.Rounds {
		t.Fatalf("preprocessing did not grow with hubs: %d vs %d",
			many.BuildStats.Rounds, few.BuildStats.Rounds)
	}
	reqsFew := UniformRandomRequests(few, 77)
	reqsMany := UniformRandomRequests(many, 77)
	_, sf, err := few.Route(reqsFew)
	if err != nil {
		t.Fatal(err)
	}
	_, sm, err := many.Route(reqsMany)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Rounds >= sf.Rounds {
		t.Fatalf("more hubs did not speed queries: %d (24 hubs) vs %d (1 hub)",
			sm.Rounds, sf.Rounds)
	}
}

func TestMultiRegisterBuild(t *testing.T) {
	g := gen.ExpanderByMatchings(48, 5, 7)
	view := graph.WholeGraph(g)
	single, err := Build(view, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := BuildWithOptions(view, Options{Hubs: 6, MultiRegister: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Multi-registration moves ~P times the registration traffic.
	if multi.BuildStats.Messages <= single.BuildStats.Messages {
		t.Fatalf("multi-register traffic %d not above single %d",
			multi.BuildStats.Messages, single.BuildStats.Messages)
	}
	// Every vertex must be resolvable in every tree at every hub.
	for h, hub := range multi.Hubs() {
		for v := 0; v < g.N(); v++ {
			if v == hub {
				continue
			}
			if _, ok := multi.down[hub][key(h, v)]; !ok {
				t.Fatalf("vertex %d not registered in tree %d", v, h)
			}
		}
	}
}

func TestMultiRegisterSpeedsHotDestination(t *testing.T) {
	// All-to-one traffic serializes on one tree edge under single
	// registration; multi-registration spreads it across trees.
	g := gen.ExpanderByMatchings(64, 6, 9)
	view := graph.WholeGraph(g)
	mk := func(multi bool) int {
		rt, err := BuildWithOptions(view, Options{Hubs: 8, MultiRegister: multi, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		var reqs []Request
		for v := 1; v < g.N(); v++ {
			for i := 0; i < 4; i++ {
				reqs = append(reqs, Request{Src: v, Dst: 0, Payload: int64(v*10 + i)})
			}
		}
		_, stats, err := rt.Route(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Rounds
	}
	single := mk(false)
	multi := mk(true)
	if multi >= single {
		t.Fatalf("multi-register did not speed the hot destination: %d vs %d rounds",
			multi, single)
	}
}

func TestRouteDeterministic(t *testing.T) {
	g := gen.ExpanderByMatchings(32, 5, 7)
	run := func() (int, int) {
		rt := buildOn(t, g, 3, 19)
		reqs := UniformRandomRequests(rt, 23)
		_, stats, err := rt.Route(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Rounds, len(reqs)
	}
	r1, n1 := run()
	r2, n2 := run()
	if r1 != r2 || n1 != n2 {
		t.Fatalf("non-deterministic routing: (%d,%d) vs (%d,%d)", r1, n1, r2, n2)
	}
}
