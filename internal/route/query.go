package route

import (
	"fmt"
	"sync"

	"dexpander/internal/congest"
	"dexpander/internal/rng"
)

// Route delivers all requests and returns the deliveries (in arrival
// order per destination, deterministic for a fixed seed) plus the
// measured CONGEST cost of the query phase. Every request must have
// member endpoints; delivery is verified exactly-once and any shortfall
// is an error.
func (rt *Router) Route(reqs []Request) ([]Delivery, congest.Stats, error) {
	n := rt.view.Base().N()
	for i, rq := range reqs {
		if rq.Src < 0 || rq.Src >= n || rq.Dst < 0 || rq.Dst >= n ||
			!rt.view.Has(rq.Src) || !rt.view.Has(rq.Dst) {
			return nil, congest.Stats{}, fmt.Errorf("route: request %d endpoints (%d,%d) not members", i, rq.Src, rq.Dst)
		}
	}
	perSrc := make(map[int][]packet)
	expected := make(map[int]int)
	seq := make(map[int]int) // per-destination round-robin over trees
	for _, rq := range reqs {
		hub := rt.HomeHub(rq.Dst)
		if rt.multi {
			// Spread each destination's incoming traffic across every
			// tree: the receive throughput grows with the hub count.
			hub = (hub + seq[rq.Dst]) % len(rt.hubs)
			seq[rq.Dst]++
		}
		perSrc[rq.Src] = append(perSrc[rq.Src], packet{
			hub:     hub,
			dst:     rq.Dst,
			payload: rq.Payload,
		})
		expected[rq.Dst]++
	}
	var mu sync.Mutex
	var out []Delivery
	initial := func(v int) []packet { return perSrc[v] }
	handle := func(v int, pk packet, arrival int) (int, bool) {
		if pk.dst == v {
			return -1, true
		}
		// Turn downward as soon as the registration path is met;
		// otherwise climb toward the hub.
		if port, ok := rt.down[v][key(pk.hub, pk.dst)]; ok {
			return int(port), false
		}
		return rt.parent[pk.hub][v], false
	}
	deliver := func(v int, pk packet) {
		mu.Lock()
		out = append(out, Delivery{Dst: v, Payload: pk.payload})
		mu.Unlock()
	}
	stats, err := rt.runPhase(initial, handle, deliver, len(reqs))
	if err != nil {
		return nil, stats, err
	}
	// Exactly-once verification.
	got := make(map[int]int)
	for _, d := range out {
		got[d.Dst]++
	}
	for dst, want := range expected {
		if got[dst] != want {
			return nil, stats, fmt.Errorf("route: destination %d received %d of %d messages", dst, got[dst], want)
		}
	}
	if len(out) != len(reqs) {
		return nil, stats, fmt.Errorf("route: delivered %d of %d messages", len(out), len(reqs))
	}
	return out, stats, nil
}

// UniformRandomRequests builds the canonical GKS workload on the view:
// each member v issues Deg(v) messages to degree-weighted random
// destinations, so every vertex is the source of O(deg) and the
// destination of O(deg) messages in expectation.
func UniformRandomRequests(rt *Router, seed uint64) []Request {
	r := rng.New(seed)
	members := rt.view.Members().Members()
	weights := make([]float64, len(members))
	for i, v := range members {
		weights[i] = float64(rt.view.Base().Deg(v))
		if weights[i] <= 0 {
			weights[i] = 1
		}
	}
	var reqs []Request
	for _, v := range members {
		for i := 0; i < rt.view.Base().Deg(v); i++ {
			dst := members[r.WeightedIndex(weights)]
			reqs = append(reqs, Request{Src: v, Dst: dst, Payload: int64(v)<<20 | int64(i)})
		}
	}
	return reqs
}
