package route

import (
	"fmt"
	"sync"

	"dexpander/internal/congest"
)

// packet is one in-flight routed message.
type packet struct {
	hub     int
	dst     int
	payload int64
}

// handler decides what a vertex does with an arriving packet: forward it
// on the returned port, or consume it (done=true). arrivalPort is -1 for
// packets originating at v.
type handler func(v int, pk packet, arrivalPort int) (forwardPort int, done bool)

// deliverFn observes consumed packets carrying payloads (nil to ignore).
type deliverFn func(v int, pk packet)

// runPhase executes a store-and-forward routing phase in the CONGEST
// engine: every member starts with initial(v) packets; each round every
// port transmits the head of its FIFO queue (channel 0). Termination is
// detected distributively on channel 1: nodes continuously converge-cast
// the minimum "quiet streak" of their hub-0 subtree, and the hub-0 root
// floods STOP once the global streak clears the in-flight horizon. The
// reported stats therefore measure the true round cost of the phase,
// including the detection overhead (channel 1 doubles CongestRounds).
func (rt *Router) runPhase(initial func(v int) []packet, handle handler, deliver deliverFn, extraLoad int) (congest.Stats, error) {
	const (
		ctlMin  = 0 // control: subtree quiet-streak minimum
		ctlStop = 1 // control: root says stop
	)
	tree0 := rt.parent[0]
	stopAfter := 2*rt.maxDepth + 8
	budget := 16*rt.view.UsableEdgeCount() + 64*rt.maxDepth + 8*extraLoad + 256
	var mu sync.Mutex
	var failure error
	eng := congest.NewEngine(rt.topo, congest.Config{Seed: rt.seed ^ 0x9e37, Channels: 2, MaxWords: 4})
	err := eng.Run(func(nd *congest.Node) {
		v := nd.V()
		queues := make([][]packet, nd.Degree())
		enqueue := func(pk packet, arrival int) {
			for {
				port, done := handle(v, pk, arrival)
				if done {
					if deliver != nil {
						deliver(v, pk)
					}
					return
				}
				if port < 0 || port >= nd.Degree() {
					mu.Lock()
					if failure == nil {
						failure = fmt.Errorf("route: vertex %d routed packet for %d to invalid port %d", v, pk.dst, port)
					}
					mu.Unlock()
					return
				}
				queues[port] = append(queues[port], pk)
				return
			}
		}
		for _, pk := range initial(v) {
			enqueue(pk, -1)
		}
		streak := 0
		childMin := make(map[int]int) // port -> last reported subtree min
		stopped := false
		for r := 0; r < budget && !stopped; r++ {
			active := false
			for p := range queues {
				if len(queues[p]) > 0 {
					pk := queues[p][0]
					queues[p] = queues[p][1:]
					nd.SendOn(0, p, int64(pk.hub), int64(pk.dst), pk.payload)
					active = true
				}
			}
			// Control: report subtree quiet-streak minimum upward.
			min := streak
			for _, m := range childMin {
				if m < min {
					min = m
				}
			}
			isRoot := tree0[v] == -1
			if isRoot {
				if min >= stopAfter {
					// Flood STOP to all ports; everyone forwards once.
					for p := 0; p < nd.Degree(); p++ {
						nd.SendOn(1, p, ctlStop, 0)
					}
					stopped = true
				}
			} else {
				nd.SendOn(1, tree0[v], ctlMin, int64(min))
			}
			sawStop := false
			for _, m := range nd.Next() {
				switch m.Ch {
				case 0:
					active = true
					enqueue(packet{hub: int(m.Words[0]), dst: int(m.Words[1]), payload: m.Words[2]}, m.Port)
				case 1:
					switch m.Words[0] {
					case ctlMin:
						childMin[m.Port] = int(m.Words[1])
					case ctlStop:
						sawStop = true
					}
				}
			}
			if sawStop && !stopped {
				for p := 0; p < nd.Degree(); p++ {
					nd.SendOn(1, p, ctlStop, 0)
				}
				nd.Next()
				stopped = true
			}
			if active {
				streak = 0
			} else {
				streak++
			}
		}
		if !stopped {
			mu.Lock()
			if failure == nil {
				failure = fmt.Errorf("route: phase budget %d exhausted at vertex %d", budget, v)
			}
			mu.Unlock()
		}
		// Drain any leftover queue as an error: the phase must finish
		// its traffic before STOP.
		for p := range queues {
			if len(queues[p]) > 0 {
				mu.Lock()
				if failure == nil {
					failure = fmt.Errorf("route: vertex %d stopped with %d queued packets", v, len(queues[p]))
				}
				mu.Unlock()
				break
			}
		}
	})
	if err != nil {
		return eng.Stats(), err
	}
	return eng.Stats(), failure
}
