package route

import (
	"testing"

	"dexpander/internal/gen"
	"dexpander/internal/graph"
)

func BenchmarkBuild(b *testing.B) {
	g := gen.ExpanderByMatchings(96, 6, 1)
	view := graph.WholeGraph(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(view, 8, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRouteGKSWorkload(b *testing.B) {
	g := gen.ExpanderByMatchings(96, 6, 1)
	view := graph.WholeGraph(g)
	rt, err := Build(view, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	reqs := UniformRandomRequests(rt, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rt.Route(reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRegistration compares single-tree vs all-tree
// registration on a hot-destination workload: the ablation behind the
// MultiRegister option (reported as rounds via custom metrics).
func BenchmarkAblationRegistration(b *testing.B) {
	g := gen.ExpanderByMatchings(64, 6, 2)
	view := graph.WholeGraph(g)
	run := func(multi bool) int {
		rt, err := BuildWithOptions(view, Options{Hubs: 8, MultiRegister: multi, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		var reqs []Request
		for v := 1; v < g.N(); v++ {
			for j := 0; j < 4; j++ {
				reqs = append(reqs, Request{Src: v, Dst: 0, Payload: int64(v*8 + j)})
			}
		}
		_, stats, err := rt.Route(reqs)
		if err != nil {
			b.Fatal(err)
		}
		return stats.Rounds
	}
	var single, multi int
	for i := 0; i < b.N; i++ {
		single = run(false)
		multi = run(true)
	}
	b.ReportMetric(float64(single), "singleRounds")
	b.ReportMetric(float64(multi), "multiRounds")
}
