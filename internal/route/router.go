// Package route implements the distributed routing data structure the
// paper uses as a black box (Ghaffari–Kuhn–Su, PODC'17): a structure
// built on a low-mixing-time (expander) component that, after a
// preprocessing phase, solves routing instances where each vertex v
// sends and receives O(deg(v)) messages.
//
// The paper only consumes the GKS interface — a preprocessing/query
// trade-off controlled by a parameter k (Section 3: preprocessing
// O(k beta)(log n)^O(k) tau_mix with beta = m^{1/k}, query
// (log n)^O(k) tau_mix) — so this package provides an honest structure
// with the same interface and knob rather than a re-proof of GKS:
//
//   - P ~ m^{1/k} hub vertices are sampled with probability proportional
//     to degree (publicly, via a shared hash, so no coordination rounds).
//   - A pipelined multi-source BFS builds P hub trees in O(P + D) rounds;
//     every vertex learns its parent port and distance per tree.
//   - Every vertex registers itself along its path to its hash-assigned
//     hub tree; intermediate vertices record which port leads down toward
//     it. Registration and queries are store-and-forward with per-edge
//     per-round capacity 1, so their round cost is measured, not assumed.
//   - A query routes each message up its destination's tree until it hits
//     the destination's registration path (at latest, the hub) and then
//     down recorded ports.
//
// More hubs mean more preprocessing (more trees to flood, more
// registration traffic) and less query congestion per tree — the same
// trade-off GKS expose through k. On an expander the trees have depth
// O(log n / phi) and random hub placement spreads query load, so query
// cost stays near the instance's natural congestion. All message traffic
// runs in the congest engine with 2 logical channels: channel 0 carries
// payload, channel 1 the quiescence-detection control traffic (charged in
// CongestRounds).
package route

import (
	"errors"
	"fmt"
	"math"

	"dexpander/internal/congest"
	"dexpander/internal/graph"
	"dexpander/internal/rng"
)

// Router is a built routing structure over one connected component.
type Router struct {
	view *graph.Sub
	// topo is the reusable CONGEST topology of the view, built once and
	// shared by the tree-build, registration, and every query phase.
	topo     *congest.Topology
	hubs     []int
	hubIdx   map[int]int
	maxDepth int
	// parent[h][v] / dist[h][v]: BFS tree of hub h.
	parent [][]int
	dist   [][]int
	// down[v] maps (hub<<32 | dst) to the port at v leading down toward
	// dst in hub's tree (registration table).
	down []map[int64]int32
	// BuildStats is the preprocessing cost.
	BuildStats congest.Stats
	seed       uint64
	multi      bool
}

// Request is one message to deliver.
type Request struct {
	// Src and Dst are member vertex ids.
	Src, Dst int
	// Payload is the message body (one word).
	Payload int64
}

// Delivery records a message arriving at its destination.
type Delivery struct {
	Dst     int
	Payload int64
}

// ErrNotConnected is returned when the view does not induce a single
// connected component.
var ErrNotConnected = errors.New("route: view must be connected")

// HubCountForK returns the hub count P ~ m^{1/k} implementing the GKS
// trade-off parameter k on a view with m usable edges (at least 1).
func HubCountForK(view *graph.Sub, k int) int {
	m := float64(view.UsableEdgeCount())
	if m < 1 {
		m = 1
	}
	p := int(math.Pow(m, 1/float64(k)))
	if p < 1 {
		p = 1
	}
	if n := view.Members().Len(); p > n {
		p = n
	}
	return p
}

// Options configures Build.
type Options struct {
	// Hubs is the hub count (see HubCountForK).
	Hubs int
	// MultiRegister registers every vertex in every hub tree instead of
	// just its home tree: preprocessing traffic grows by a factor of
	// Hubs, and in exchange a destination's incoming traffic can be
	// spread over all trees, multiplying its receive throughput — the
	// knob heavy-load instances (the triangle workload) need.
	MultiRegister bool
	// Seed drives hub sampling and engine randomness.
	Seed uint64
}

// Build constructs the router with the given hub count, registering each
// vertex in its home tree only. It runs the preprocessing inside the
// CONGEST engine and records its cost in BuildStats.
func Build(view *graph.Sub, hubCount int, seed uint64) (*Router, error) {
	return BuildWithOptions(view, Options{Hubs: hubCount, Seed: seed})
}

// BuildWithOptions constructs the router per the options.
func BuildWithOptions(view *graph.Sub, opt Options) (*Router, error) {
	if !view.IsConnected() {
		return nil, ErrNotConnected
	}
	n := view.Members().Len()
	if n == 0 {
		return nil, ErrNotConnected
	}
	hubCount := opt.Hubs
	if hubCount < 1 {
		hubCount = 1
	}
	if hubCount > n {
		hubCount = n
	}
	rt := &Router{view: view, topo: congest.NewTopology(view), seed: opt.Seed, multi: opt.MultiRegister}
	rt.pickHubs(hubCount)
	first := view.Members().Members()[0]
	apx := view.DiameterApprox(first)
	rt.maxDepth = 2*apx + 2
	if err := rt.buildTrees(); err != nil {
		return nil, err
	}
	if err := rt.register(); err != nil {
		return nil, err
	}
	return rt, nil
}

// Hubs returns the hub vertices (do not modify).
func (rt *Router) Hubs() []int { return rt.hubs }

// MaxDepth returns the depth bound used for the hub trees.
func (rt *Router) MaxDepth() int { return rt.maxDepth }

// pickHubs samples hubCount distinct hubs with probability proportional
// to degree, deterministically in the seed. Hub identity is derived from
// public randomness (the seed plays the role of a shared hash), so
// selection itself costs no communication; announcing it is folded into
// the tree-build flood.
func (rt *Router) pickHubs(hubCount int) {
	members := rt.view.Members().Members()
	weights := make([]float64, len(members))
	for i, v := range members {
		weights[i] = float64(rt.view.Base().Deg(v))
		if weights[i] <= 0 {
			weights[i] = 1
		}
	}
	r := rng.New(rt.seed)
	chosen := make(map[int]bool, hubCount)
	for len(chosen) < hubCount {
		v := members[r.WeightedIndex(weights)]
		if !chosen[v] {
			chosen[v] = true
			rt.hubs = append(rt.hubs, v)
		}
	}
	rt.hubIdx = make(map[int]int, len(rt.hubs))
	for i, h := range rt.hubs {
		rt.hubIdx[h] = i
	}
}

// buildTrees runs the pipelined multi-source BFS: each round every node
// forwards at most one newly learned (hub, dist) pair per port. With P
// hubs and diameter D this completes within P + 2D + 8 rounds, the
// budget every node runs for.
func (rt *Router) buildTrees() error {
	g := rt.view.Base()
	p := len(rt.hubs)
	rt.parent = make([][]int, p)
	rt.dist = make([][]int, p)
	for h := 0; h < p; h++ {
		rt.parent[h] = make([]int, g.N())
		rt.dist[h] = make([]int, g.N())
		for v := range rt.parent[h] {
			rt.parent[h][v] = -1
			rt.dist[h][v] = -1
		}
	}
	budget := p + 2*rt.maxDepth + 8
	eng := congest.NewEngine(rt.topo, congest.Config{Seed: rt.seed, MaxWords: 2})
	err := eng.Run(func(nd *congest.Node) {
		known := make([]int, p)    // best dist per hub, -1 unknown
		parentOf := make([]int, p) // port toward hub, -1 root/unknown
		for h := range known {
			known[h] = -1
			parentOf[h] = -1
		}
		var pending []int // hub indices to announce, FIFO
		if h, ok := rt.hubIdx[nd.V()]; ok {
			known[h] = 0
			pending = append(pending, h)
		}
		for r := 0; r < budget; r++ {
			if len(pending) > 0 {
				h := pending[0]
				pending = pending[1:]
				nd.SendToAll(int64(h), int64(known[h]))
			}
			for _, m := range nd.Next() {
				h, d := int(m.Words[0]), int(m.Words[1])+1
				if known[h] == -1 || d < known[h] {
					known[h] = d
					parentOf[h] = m.Port
					pending = append(pending, h)
				}
			}
		}
		for h := 0; h < p; h++ {
			rt.parent[h][nd.V()] = parentOf[h]
			rt.dist[h][nd.V()] = known[h]
		}
	})
	if err != nil {
		return fmt.Errorf("route: tree build: %w", err)
	}
	rt.BuildStats.Add(eng.Stats())
	for h := 0; h < p; h++ {
		ok := true
		rt.view.Members().ForEach(func(v int) {
			if rt.dist[h][v] < 0 {
				ok = false
			}
		})
		if !ok {
			return fmt.Errorf("route: hub %d tree incomplete within budget %d", h, budget)
		}
	}
	return nil
}

// HomeHub returns the hub index responsible for vertex v (public hash).
func (rt *Router) HomeHub(v int) int {
	r := rng.New(rt.seed ^ 0x5bd1e995)
	return int(r.Fork(uint64(v)).Uint64() % uint64(len(rt.hubs)))
}

// register sends every vertex's registration up its home hub's tree —
// or up every tree when MultiRegister is set — recording down-ports at
// every intermediate vertex, via the generic store-and-forward phase.
func (rt *Router) register() error {
	g := rt.view.Base()
	rt.down = make([]map[int64]int32, g.N())
	rt.view.Members().ForEach(func(v int) {
		rt.down[v] = make(map[int64]int32)
	})
	treesOf := func(v int) []int {
		if !rt.multi {
			return []int{rt.HomeHub(v)}
		}
		all := make([]int, 0, len(rt.hubs))
		for h := range rt.hubs {
			all = append(all, h)
		}
		return all
	}
	initial := func(v int) []packet {
		var pks []packet
		for _, h := range treesOf(v) {
			if rt.hubs[h] == v {
				continue // hubs are their own registration root
			}
			pks = append(pks, packet{hub: h, dst: v})
		}
		return pks
	}
	handle := func(v int, pk packet, arrivalPort int) (forward int, done bool) {
		// Record the down-port, then continue upward unless at the hub.
		rt.down[v][key(pk.hub, pk.dst)] = int32(arrivalPort)
		if rt.hubs[pk.hub] == v {
			return -1, true
		}
		return rt.parent[pk.hub][v], false
	}
	load := rt.view.Members().Len()
	if rt.multi {
		load *= len(rt.hubs)
	}
	stats, err := rt.runPhase(initial, handle, nil, load)
	if err != nil {
		return fmt.Errorf("route: registration: %w", err)
	}
	rt.BuildStats.Add(stats)
	// Verify: every vertex's registration reached each of its hubs.
	var bad error
	rt.view.Members().ForEach(func(v int) {
		for _, h := range treesOf(v) {
			hub := rt.hubs[h]
			if hub == v {
				continue
			}
			if _, ok := rt.down[hub][key(h, v)]; !ok && bad == nil {
				bad = fmt.Errorf("route: vertex %d not registered at hub %d", v, hub)
			}
		}
	})
	return bad
}

func key(hub, dst int) int64 { return int64(hub)<<32 | int64(uint32(dst)) }
