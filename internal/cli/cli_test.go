package cli

import (
	"flag"
	"testing"

	"dexpander/internal/gen"
)

// TestSpecHistoricalConventions pins the CLI-era parameter translations:
// -size is n for single-parameter families, gnp with p <= 0 falls back to
// 4/n, and sbm's inter-block probability is p/50.
func TestSpecHistoricalConventions(t *testing.T) {
	gf := GraphFlags{Family: "gnp", Size: 20, Seed: 5}
	g, err := gf.Build()
	if err != nil {
		t.Fatal(err)
	}
	if want := gen.GNP(20, 4/20.0, 5); g.Fingerprint() != want.Fingerprint() {
		t.Error("gnp p fallback is not 4/n")
	}

	gf = GraphFlags{Family: "sbm", Blocks: 3, Size: 8, P: 0.5, Seed: 2}
	g, err = gf.Build()
	if err != nil {
		t.Fatal(err)
	}
	if want := gen.PlantedPartition(3, 8, 0.5, 0.5/50, 2); g.Fingerprint() != want.Fingerprint() {
		t.Error("sbm pout is not p/50")
	}

	gf = GraphFlags{Family: "expander", Size: 16, D: 6, Seed: 3}
	g, err = gf.Build()
	if err != nil {
		t.Fatal(err)
	}
	if want := gen.ExpanderByMatchings(16, 6, 3); g.Fingerprint() != want.Fingerprint() {
		t.Error("expander does not map -size to n and -d to d")
	}
}

func TestRegisterParsesFlags(t *testing.T) {
	gf := GraphFlags{Family: "ring", Blocks: 6, Size: 12, Bridges: 1, D: 6, Seed: 1}
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	gf.Register(fs)
	if err := fs.Parse([]string{"-graph", "torus", "-size", "5", "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
	if gf.Family != "torus" || gf.Size != 5 || gf.Seed != 9 {
		t.Fatalf("parsed flags: %+v", gf)
	}
	g, err := gf.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 25 {
		t.Fatalf("torus size 5: N = %d", g.N())
	}
}
