// Package cli holds the flag and process boilerplate shared by every
// command under cmd/: the error-exit wrapper and the graph-selection
// flag block that maps the long-standing -graph/-blocks/-size/... flags
// onto the gen.Spec registry, so all tools (and the dexpanderd service)
// accept the same families with the same parameter names.
package cli

import (
	"flag"
	"fmt"
	"os"

	"dexpander/internal/gen"
	"dexpander/internal/graph"
)

// Main runs the command body and turns an error return into the
// conventional "name: error" on stderr plus exit status 1.
func Main(name string, run func() error) {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, name+":", err)
		os.Exit(1)
	}
}

// BackendFlags is the shared -backend flag block: every
// decomposition-adjacent tool selects its algorithm variant through the
// same flag name and vocabulary (the core backend registry names, plus
// "auto" where the command supports quality-bound-driven selection),
// validated against the subset the command actually implements.
type BackendFlags struct {
	// Backend is the selected backend name; set the command's default
	// before Register.
	Backend string

	allowed []string
}

// Register installs the -backend flag on fs, restricted to allowed.
func (f *BackendFlags) Register(fs *flag.FlagSet, allowed []string) {
	f.allowed = allowed
	fs.StringVar(&f.Backend, "backend", f.Backend,
		fmt.Sprintf("decomposition backend, one of %v", allowed))
}

// Validate rejects a backend outside the registered subset.
func (f *BackendFlags) Validate() error {
	for _, a := range f.allowed {
		if f.Backend == a {
			return nil
		}
	}
	return fmt.Errorf("unknown backend %q (known: %v)", f.Backend, f.allowed)
}

// GraphFlags is the shared graph-selection flag block. Zero values are
// replaced by each command's defaults before Register, so existing
// invocations keep their historical meaning (e.g. sparsecut's ring
// defaults to 4 blocks, lowdiam's to 6).
type GraphFlags struct {
	// Family is the gen.Spec family (plus the historical aliases handled
	// in Spec).
	Family string
	// Blocks is the block/clique count (ring, sbm, expander-of-cliques).
	Blocks int
	// Size is the primary size parameter: block/clique size, torus side,
	// grid side, or n for the single-parameter families.
	Size int
	// Bridges is the dumbbell bridge count.
	Bridges int
	// Small is the small side (unbalanced dumbbell).
	Small int
	// D is the expander matching count / hypercube dimension /
	// barabasi-albert edges-per-vertex m0.
	D int
	// P is the edge probability (gnp, sbm intra; <= 0 selects the
	// family's fallback: 4/n for gnp, the registry default otherwise).
	P float64
	// Seed drives all randomness.
	Seed uint64
}

// Register installs the flag block on fs (use flag.CommandLine in main).
func (f *GraphFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Family, "graph", f.Family,
		fmt.Sprintf("graph family, one of %v", gen.Families()))
	fs.IntVar(&f.Blocks, "blocks", f.Blocks, "block/clique count (ring, sbm, expander-of-cliques)")
	fs.IntVar(&f.Size, "size", f.Size, "primary size parameter (block size, torus/grid side, or n)")
	fs.IntVar(&f.Bridges, "bridges", f.Bridges, "bridge count (dumbbell)")
	fs.IntVar(&f.Small, "small", f.Small, "small side size (unbalanced)")
	fs.IntVar(&f.D, "d", f.D, "degree parameter (expander, expander-of-cliques, hypercube, barabasi-albert m0)")
	fs.Float64Var(&f.P, "p", f.P, "edge probability (gnp) / intra probability (sbm); <= 0 means the family fallback")
	fs.Uint64Var(&f.Seed, "seed", f.Seed, "random seed")
}

// Spec translates the flag values into the registry spec for the chosen
// family, reproducing each historical CLI convention: -size is n for the
// single-parameter families, gnp with p <= 0 falls back to 4/n, and sbm's
// inter-block probability is p/50 as before.
func (f *GraphFlags) Spec() (gen.Spec, error) {
	s := gen.Spec{Family: f.Family, Seed: f.Seed, Params: map[string]float64{}}
	switch f.Family {
	case "gnp", "gnp-connected":
		s.Params["n"] = float64(f.Size)
		if f.P > 0 {
			s.Params["p"] = f.P
		} else if f.Size > 0 {
			s.Params["p"] = 4 / float64(f.Size)
		}
	case "ring":
		s.Params["blocks"] = float64(f.Blocks)
		s.Params["size"] = float64(f.Size)
	case "sbm":
		s.Params["blocks"] = float64(f.Blocks)
		s.Params["size"] = float64(f.Size)
		if f.P > 0 {
			s.Params["p"] = f.P
			s.Params["pout"] = f.P / 50
		}
	case "torus":
		s.Params["size"] = float64(f.Size)
	case "grid":
		s.Params["rows"] = float64(f.Size)
		s.Params["cols"] = float64(f.Size)
	case "dumbbell":
		s.Params["size"] = float64(f.Size)
		s.Params["bridges"] = float64(f.Bridges)
	case "unbalanced":
		s.Params["size"] = float64(f.Size)
		s.Params["small"] = float64(f.Small)
	case "expander":
		s.Params["n"] = float64(f.Size)
		s.Params["d"] = float64(f.D)
	case "expander-of-cliques":
		s.Params["blocks"] = float64(f.Blocks)
		s.Params["size"] = float64(f.Size)
		s.Params["d"] = float64(f.D)
	case "bipartite":
		s.Params["nl"] = float64(f.Size)
		s.Params["nr"] = float64(f.Size)
		if f.P > 0 {
			s.Params["p"] = f.P
		}
	case "chung-lu", "path", "cycle", "star", "complete":
		s.Params["n"] = float64(f.Size)
	case "barabasi-albert":
		s.Params["n"] = float64(f.Size)
		if f.D > 0 {
			s.Params["m0"] = float64(f.D)
		}
	case "hypercube":
		s.Params["d"] = float64(f.D)
	default:
		return gen.Spec{}, fmt.Errorf("unknown graph family %q (known: %v)", f.Family, gen.Families())
	}
	return s, nil
}

// Build constructs the selected graph.
func (f *GraphFlags) Build() (*graph.Graph, error) {
	s, err := f.Spec()
	if err != nil {
		return nil, err
	}
	return s.Build()
}
