// Triangle enumeration on a planted-community graph: the paper's
// headline application (Theorem 2). The CONGEST algorithm decomposes the
// graph into expanders, enumerates inside each component with routed
// group triples, and recurses on the leftover inter-component edges; the
// result is checked against brute force and compared with the baselines.
package main

import (
	"fmt"
	"log"

	"dexpander/internal/gen"
	"dexpander/internal/graph"
	"dexpander/internal/triangle"
)

func main() {
	// A stochastic block model with three dense communities: triangles
	// live mostly inside communities, with a few crossing them.
	g := gen.PlantedPartition(3, 16, 0.7, 0.04, 7)
	view := graph.WholeGraph(g)
	fmt.Println("input:", gen.Describe(g))

	truth := triangle.BruteForce(view)
	fmt.Printf("ground truth: %d triangles\n", truth.Len())

	ours, stats, err := triangle.Enumerate(view, triangle.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CONGEST (ours):      %d triangles in %d simulated rounds "+
		"(%d recursion levels, %d components)\n",
		ours.Len(), stats.Rounds, stats.Recursions, stats.Components)
	if !ours.Equal(truth) {
		log.Fatal("enumeration mismatch against brute force")
	}

	clique, cs, err := triangle.CliqueDLP(view, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CONGESTED-CLIQUE DLP: %d triangles in %d rounds\n", clique.Len(), cs.Rounds)

	naive, nvs, err := triangle.Naive(view, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive CONGEST:        %d triangles in %d rounds (= max degree)\n",
		naive.Len(), nvs.Rounds)

	// A few sample triangles.
	for i, t := range ours.Sorted() {
		if i >= 3 {
			break
		}
		fmt.Printf("  e.g. {%d, %d, %d}\n", t.A, t.B, t.C)
	}
}
