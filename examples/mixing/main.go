// Conductance vs mixing time: the Jerrum–Sinclair relation
// Theta(1/Phi) <= tau_mix <= Theta(log n / Phi^2) that makes expander
// decomposition useful — low-conductance components mix fast, which is
// what the routing layer and the triangle algorithm rely on.
package main

import (
	"fmt"
	"math"

	"dexpander/internal/gen"
	"dexpander/internal/graph"
	"dexpander/internal/spectral"
)

func main() {
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"complete K32", gen.Complete(32)},
		{"hypercube d=6", gen.Hypercube(6)},
		{"expander 5-reg", gen.ExpanderByMatchings(64, 5, 1)},
		{"torus 10x10", gen.Torus(10)},
		{"ring of cliques", gen.RingOfCliques(4, 8, 1)},
		{"cycle C64", gen.Cycle(64)},
	}
	fmt.Println("graph             n    Phi(sweep)  lambda2/2  tauMix  logn/Phi^2")
	for _, f := range families {
		view := graph.WholeGraph(f.g)
		phiUp := spectral.ConductanceSweepUpper(view, []int{0, 1}, 40)
		cheegerLo := spectral.CheegerLower(view, 800, 1)
		tau := spectral.MixingTime(view, 0, 0.5, 1_000_000)
		n := float64(f.g.N())
		upper := math.Log(n) / (cheegerLo * cheegerLo)
		fmt.Printf("%-16s %4d  %-10.4f  %-9.4f  %-6d  %.0f\n",
			f.name, f.g.N(), phiUp, cheegerLo, tau, upper)
	}
	fmt.Println("\nhigh conductance -> fast mixing (top rows); sparse cuts -> slow mixing (bottom).")
	fmt.Println("the decomposition guarantees every component sits in the top regime.")
}
