// Service quickstart: run the graph analytics service in-process on a
// loopback listener, then drive it with the thin Go client — register a
// graph by generator spec, watch the single-flight cache turn a cold
// decomposition into a fast hot query, upload the same graph as a
// gzipped edge list to see fingerprint dedup, and read the counters.
//
// The same API is served standalone by cmd/dexpanderd.
package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"dexpander/internal/gen"
	"dexpander/internal/graph"
	"dexpander/internal/service"
)

func main() {
	// A loopback listener on a free port, serving the service's API.
	svc := service.New(service.Config{Workers: 2})
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	server := &http.Server{Handler: svc.Handler()}
	go server.Serve(ln) //nolint:errcheck
	defer server.Close()

	ctx := context.Background()
	c := service.NewClient("http://" + ln.Addr().String())

	// Register a generated graph: six cliques of 12 vertices in a ring.
	spec := gen.Spec{
		Family: "ring",
		Params: map[string]float64{"blocks": 6, "size": 12},
		Seed:   42,
	}
	snap, err := c.RegisterSpec(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %s: n=%d m=%d\n", snap.ID, snap.N, snap.M)

	// Cold query: the decomposition actually runs (once).
	start := time.Now()
	dec, err := c.Decompose(ctx, snap.ID, service.QueryParams{Eps: 0.6})
	if err != nil {
		log.Fatal(err)
	}
	cold := time.Since(start)
	fmt.Printf("decomposition: %d components, eps=%.4f, checksum %s\n",
		dec.Components, dec.EpsAchieved, dec.Checksum)

	// Hot query: identical params are served from the single-flight
	// cache — same bytes, no recomputation.
	start = time.Now()
	if _, err := c.Decompose(ctx, snap.ID, service.QueryParams{Eps: 0.6}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold %v -> hot %v\n", cold.Round(time.Microsecond), time.Since(start).Round(time.Microsecond))

	// Triangle queries amortize against the same snapshot.
	tri, err := c.TriangleCount(ctx, snap.ID, service.QueryParams{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles: %d (checksum %s)\n", tri.Triangles, tri.Checksum)

	// Uploading the same graph as a gzipped edge list dedups onto the
	// registered snapshot: the fingerprint is the identity.
	g, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	var plain bytes.Buffer
	if err := graph.WriteEdgeList(&plain, g); err != nil {
		log.Fatal(err)
	}
	var packed bytes.Buffer
	zw := gzip.NewWriter(&packed)
	if _, err := zw.Write(plain.Bytes()); err != nil {
		log.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		log.Fatal(err)
	}
	up, err := c.RegisterEdgeList(ctx, &packed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gzip upload deduped onto %s (refs now %d)\n", up.ID, up.Refs)

	st, err := c.ServerStats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server: %d snapshot(s), %d cached result(s), %d computation(s), %d hit(s)\n",
		st.Snapshots, st.CacheEntries, st.Computations, st.Hits)
}
