// Service quickstart: run the graph analytics service in-process on a
// loopback listener, then drive it with the thin Go client — register a
// graph by generator spec under a named tenant, watch the single-flight
// cache turn a cold decomposition into a fast hot query, see a
// deadline-bounded request refused with a typed error, upload the same
// graph as a gzipped edge list to see fingerprint dedup, and read the
// per-tenant counters (stats schema v2).
//
// Failures report through the same structured JSON logger dexpanderd
// uses (internal/obs), not the stdlib logger, so the example's error
// output is machine-parseable exactly like the daemon's.
//
// The same API is served standalone by cmd/dexpanderd.
package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"dexpander/internal/gen"
	"dexpander/internal/graph"
	"dexpander/internal/obs"
	"dexpander/internal/service"
)

// logger carries failures as structured JSON lines on stderr.
var logger = obs.NewLogger(os.Stderr, obs.LevelInfo)

// fatal logs one structured error line and exits non-zero.
func fatal(msg string, kv ...any) {
	logger.Error(msg, kv...)
	os.Exit(1)
}

func main() {
	// A loopback listener on a free port, serving the service's API.
	svc := service.New(service.Config{Workers: 2})
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal("listen", "err", err)
	}
	server := &http.Server{Handler: svc.Handler()}
	go server.Serve(ln) //nolint:errcheck
	defer server.Close()

	ctx := context.Background()
	c := service.NewClient("http://" + ln.Addr().String())
	// Every request this client makes is attributed (and quota'd) as
	// tenant "quickstart"; an empty Tenant means the server default.
	c.Tenant = "quickstart"

	// Register a generated graph: six cliques of 12 vertices in a ring.
	spec := gen.Spec{
		Family: "ring",
		Params: map[string]float64{"blocks": 6, "size": 12},
		Seed:   42,
	}
	snap, err := c.RegisterSpec(ctx, spec)
	if err != nil {
		fatal("register spec", "err", err)
	}
	fmt.Printf("registered %s: n=%d m=%d\n", snap.ID, snap.N, snap.M)

	// Cold query: the decomposition actually runs (once).
	start := time.Now()
	dec, err := c.Decompose(ctx, snap.ID, service.DecomposeParams{Eps: 0.6})
	if err != nil {
		fatal("decompose (cold)", "err", err)
	}
	cold := time.Since(start)
	fmt.Printf("decomposition: %d components, eps=%.4f, checksum %s\n",
		dec.Components, dec.EpsAchieved, dec.Checksum)

	// Hot query: identical params are served from the single-flight
	// cache — same bytes, no recomputation.
	start = time.Now()
	if _, err := c.Decompose(ctx, snap.ID, service.DecomposeParams{Eps: 0.6}); err != nil {
		fatal("decompose (hot)", "err", err)
	}
	fmt.Printf("cold %v -> hot %v\n", cold.Round(time.Microsecond), time.Since(start).Round(time.Microsecond))

	// Triangle queries amortize against the same snapshot.
	tri, err := c.TriangleCount(ctx, snap.ID, service.CountParams{})
	if err != nil {
		fatal("triangle count", "err", err)
	}
	fmt.Printf("triangles: %d (checksum %s)\n", tri.Triangles, tri.Checksum)

	// A context deadline rides the X-Timeout-Ms header, so the SERVER
	// enforces it: a fresh query under an already-spent budget is refused
	// with the "deadline" envelope code, which the client surfaces as a
	// typed error — errors.Is works across the HTTP boundary.
	// budget. (Whether the refusal arrives from the server or the
	// transport gives up first is a race; both are typed.)
	expired, cancel := context.WithTimeout(ctx, 5*time.Millisecond)
	_, err = c.Decompose(expired, snap.ID, service.DecomposeParams{Eps: 0.6, Seed: 99})
	cancel()
	switch {
	case errors.Is(err, service.ErrDeadline):
		var apiErr *service.APIError
		errors.As(err, &apiErr)
		fmt.Printf("expired budget refused: HTTP %d code=%q retryable=%v\n",
			apiErr.Status, apiErr.Code, apiErr.Retryable)
	case errors.Is(err, context.DeadlineExceeded):
		// The transport can also give up before the request is sent.
		fmt.Println("expired budget refused client-side before reaching the server")
	case err == nil:
		fatal("expired budget was served")
	default:
		fatal("deadline probe", "err", err)
	}

	// Uploading the same graph as a gzipped edge list dedups onto the
	// registered snapshot: the fingerprint is the identity.
	g, err := spec.Build()
	if err != nil {
		fatal("build graph", "err", err)
	}
	var plain bytes.Buffer
	if err := graph.WriteEdgeList(&plain, g); err != nil {
		fatal("write edge list", "err", err)
	}
	var packed bytes.Buffer
	zw := gzip.NewWriter(&packed)
	if _, err := zw.Write(plain.Bytes()); err != nil {
		fatal("gzip edge list", "err", err)
	}
	if err := zw.Close(); err != nil {
		fatal("gzip close", "err", err)
	}
	up, err := c.RegisterEdgeList(ctx, &packed)
	if err != nil {
		fatal("register edge list", "err", err)
	}
	fmt.Printf("gzip upload deduped onto %s (refs now %d)\n", up.ID, up.Refs)

	st, err := c.ServerStats(ctx)
	if err != nil {
		fatal("server stats", "err", err)
	}
	fmt.Printf("server: %d snapshot(s), %d cached result(s), %d computation(s), %d hit(s)\n",
		st.Snapshots, st.CacheEntries, st.Computations, st.Hits)
	// Stats schema v2 attributes work per tenant.
	if ts, ok := st.Tenants["quickstart"]; ok {
		fmt.Printf("tenant quickstart: %d computation(s), %d hit(s), %d snapshot ref(s)\n",
			ts.Computations, ts.Hits, ts.SnapshotRefs)
	}
}
