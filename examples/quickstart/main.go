// Quickstart: generate a graph with planted structure, compute its
// (eps, phi)-expander decomposition, and verify the contract — the
// 30-line tour of the library.
package main

import (
	"fmt"
	"log"

	"dexpander/internal/core"
	"dexpander/internal/gen"
	"dexpander/internal/graph"
	"dexpander/internal/nibble"
)

func main() {
	// Six cliques of 12 vertices in a ring: the natural decomposition
	// is the cliques themselves, with the ring bridges as inter-cluster
	// edges.
	g := gen.RingOfCliques(6, 12, 42)
	fmt.Println("input:", gen.Describe(g))

	view := graph.WholeGraph(g)
	dec, err := core.Decompose(view, core.Options{
		Eps:    0.6,              // allowed inter-cluster edge fraction
		K:      2,                // Theorem 1's rounds/quality trade-off
		Preset: nibble.Practical, // runnable constants (Paper for exact forms)
		Seed:   42,
	}, core.SeqSubroutines{Preset: nibble.Practical})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("decomposition: %d components, eps=%.4f (inter-cluster edge fraction)\n",
		dec.Count, dec.EpsAchieved)
	fmt.Printf("every component certified with conductance >= %.5f\n", dec.PhiTarget)
	fmt.Println("quality:", dec.Evaluate(view))
	if err := dec.CheckPartition(view); err != nil {
		log.Fatal("invalid decomposition: ", err)
	}
	fmt.Println("partition verified: components connected, no surviving cross edges")
}
