// Nearly most balanced sparse cut (Theorem 3) on a planted instance:
// find the hidden bridge of an unbalanced dumbbell and compare the
// returned balance with the theorem's floor min(b/2, 1/48) — then watch
// the same call certify an expander by finding nothing.
package main

import (
	"fmt"
	"log"
	"math"

	"dexpander/internal/dnibble"
	"dexpander/internal/gen"
	"dexpander/internal/graph"
	"dexpander/internal/nibble"
	"dexpander/internal/rng"
)

func main() {
	// K20 and K7 joined by one edge: the planted cut separates the K7
	// with balance b ~ Vol(K7)/Vol ~ 0.1.
	g := gen.UnbalancedDumbbell(20, 7, 3)
	view := graph.WholeGraph(g)
	fmt.Println("input:", gen.Describe(g))

	small := graph.NewVSet(g.N())
	for v := 20; v < 27; v++ {
		small.Add(v)
	}
	b := view.Balance(small)
	phiPlant := view.Conductance(small)
	fmt.Printf("planted cut: conductance %.5f, balance %.4f\n", phiPlant, b)

	phi := 2 * phiPlant
	// The paper's Partition budget s = Theta(g log(1/p)) makes even
	// low-balance cuts hit w.h.p.; scale the practical iteration budget
	// like 1/b the same way (each degree-weighted start lands in the
	// small side with probability ~b).
	pr := nibble.PracticalParams(view, nibble.PartitionPhi(view, phi, nibble.Practical))
	pr.EmptyStop = int(8/b) + 8
	pr.SCap = 2 * pr.EmptyStop
	res := nibble.Partition(view, pr, rng.New(3))
	if res.Empty() {
		log.Fatal("missed the planted cut")
	}
	floor := math.Min(b/2, 1.0/48.0)
	fmt.Printf("found cut: %d vertices, balance %.4f (floor %.4f), conductance %.5f (bound %.5f)\n",
		res.C.Len(), res.Balance, floor, res.Conductance,
		nibble.TransferH(view, phi, nibble.Practical))

	// The same cut found distributively, with the CONGEST cost measured.
	dres, stats, err := dnibble.SparseCut(view, view, phi, nibble.Practical, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed: balance %.4f in %d simulated CONGEST rounds\n",
		dres.Balance, stats.Rounds)

	// Negative case: an expander yields the empty cut.
	exp := graph.WholeGraph(gen.ExpanderByMatchings(48, 6, 3))
	if r := nibble.SparseCut(exp, 0.01, nibble.Practical, rng.New(3)); r.Empty() {
		fmt.Println("expander at phi=0.01: no cut found (correctly certified)")
	} else {
		fmt.Printf("expander returned a cut of conductance %.4f (within the h(phi) bound)\n",
			r.Conductance)
	}
}
