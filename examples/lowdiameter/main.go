// Low-diameter decomposition (Theorem 4) on a barbell-path: watch the
// density partition protect the dense clique ends (V_D) while the
// exponential-shift clustering chops the sparse path, giving bounded
// component diameters with a w.h.p. cut bound — and no diameter-time
// spent, even though the graph's diameter is the path length.
package main

import (
	"fmt"
	"log"

	"dexpander/internal/gen"
	"dexpander/internal/graph"
	"dexpander/internal/ldd"
	"dexpander/internal/rng"
)

func main() {
	// Two K20s joined by a 300-vertex path: diameter ~ 302.
	g := gen.BarbellPath(20, 300)
	view := graph.WholeGraph(g)
	fmt.Println("input:", gen.Describe(g))
	fmt.Println("graph diameter:", view.DiameterApprox(0), "(approx)")

	// beta = 0.5 is below this instance's splittable scale: every
	// A-ball (A ~ 2 ln n / beta) holds more than m/(2B) edges, so the
	// density partition marks everything V_D and the contract holds
	// trivially with zero cuts. beta = 0.9 shrinks the balls into the
	// sparse regime and the path shatters into low-diameter pieces.
	for _, beta := range []float64{0.5, 0.9} {
		pr := ldd.NewParams(g.N(), beta, ldd.Practical)
		res := ldd.Decompose(view, pr, rng.New(7))
		bound := 2*(pr.T+1) + 20*pr.A*pr.B + 2
		fmt.Printf("\nbeta=%.1f: %d components, max diameter %d (bound %d), cut fraction %.3f (bound %.1f)\n",
			beta, res.Count, res.MaxDiameter(view), bound, res.CutFraction(view), 3*beta)
		// The clique ends are dense, so they sit inside V_D and are
		// never split.
		for e := 0; e < g.M(); e++ {
			u, v := g.EdgeEndpoints(e)
			if u < 20 && v < 20 && res.Labels[u] != res.Labels[v] {
				log.Fatal("a clique edge was cut — density partition failed")
			}
		}
		fmt.Println("clique ends intact (V_D protected them)")
	}

	// The distributed pipeline measures the round cost: note it is far
	// below the graph diameter times any repetition count — Theorem 4's
	// headline.
	pr := ldd.NewParams(g.N(), 0.9, ldd.Practical)
	res, stats, err := ldd.DistDecompose(view, pr, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndistributed run: %d components in %d CONGEST rounds (graph diameter %d)\n",
		res.Count, stats.Rounds, view.DiameterApprox(0))
}
