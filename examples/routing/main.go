// Expander routing (the paper's Section 3 black box): build the
// hub-tree routing structure on an expander, deliver a degree-weighted
// all-to-all workload, and show the GKS preprocessing/query trade-off by
// sweeping the hub parameter k.
package main

import (
	"fmt"
	"log"

	"dexpander/internal/gen"
	"dexpander/internal/graph"
	"dexpander/internal/route"
)

func main() {
	g := gen.ExpanderByMatchings(96, 6, 11)
	view := graph.WholeGraph(g)
	fmt.Println("input:", gen.Describe(g))

	fmt.Println("k   hubs  buildRounds  queryRounds  messages")
	for _, k := range []int{1, 2, 3, 4} {
		hubs := route.HubCountForK(view, k)
		rt, err := route.Build(view, hubs, 11)
		if err != nil {
			log.Fatal(err)
		}
		reqs := route.UniformRandomRequests(rt, uint64(100+k))
		out, stats, err := rt.Route(reqs)
		if err != nil {
			log.Fatal(err)
		}
		if len(out) != len(reqs) {
			log.Fatalf("k=%d: delivered %d of %d", k, len(out), len(reqs))
		}
		fmt.Printf("%-3d %-5d %-12d %-12d %d\n",
			k, hubs, rt.BuildStats.Rounds, stats.Rounds, stats.Messages)
	}
	fmt.Println("\nsmaller k = more hubs: preprocessing rises, query congestion falls —")
	fmt.Println("the trade-off the triangle algorithm exploits (cheap queries, k constant).")
}
