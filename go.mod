module dexpander

go 1.24
